package matching

import (
	"math/rand"
	"testing"

	"stopss/internal/message"
)

func adv(preds ...message.Predicate) Advertisement {
	return NewAdvertisement("pub", preds...)
}

func TestAdvertisementConformsTo(t *testing.T) {
	a := adv(
		message.Pred("sym", message.OpEq, message.String("IBM")),
		message.Between("price", message.Int(0), message.Int(500)),
	)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if !a.ConformsTo(message.E("sym", "IBM", "price", 100)) {
		t.Error("conforming event rejected")
	}
	if a.ConformsTo(message.E("sym", "MSFT", "price", 100)) {
		t.Error("advertised constraint violated but accepted")
	}
	if a.ConformsTo(message.E("sym", "IBM", "price", 100, "volume", 1)) {
		t.Error("unadvertised attribute accepted")
	}
	if a.ConformsTo(message.E("sym", "IBM")) {
		t.Error("missing advertised attribute accepted")
	}
}

func TestOverlapsBasics(t *testing.T) {
	a := adv(
		message.Pred("sym", message.OpEq, message.String("IBM")),
		message.Between("price", message.Int(0), message.Int(500)),
	)
	cases := []struct {
		name string
		sub  message.Subscription
		want bool
	}{
		{"same symbol", sub(message.Pred("sym", message.OpEq, message.String("IBM"))), true},
		{"other symbol", sub(message.Pred("sym", message.OpEq, message.String("MSFT"))), false},
		{"price inside", sub(message.Pred("price", message.OpGe, message.Int(100))), true},
		{"price outside", sub(message.Pred("price", message.OpGt, message.Int(500))), false},
		{"price boundary closed", sub(message.Pred("price", message.OpGe, message.Int(500))), true},
		{"unadvertised attribute", sub(message.Pred("volume", message.OpGt, message.Int(0))), false},
		{"not-exists on unadvertised", sub(message.Predicate{Attr: "volume", Op: message.OpNotExists}), true},
		{"not-exists on advertised", sub(message.Predicate{Attr: "sym", Op: message.OpNotExists}), false},
		{"exists on advertised", sub(message.Exists("price")), true},
		{"conjunction overlapping", sub(
			message.Pred("sym", message.OpEq, message.String("IBM")),
			message.Between("price", message.Int(400), message.Int(600))), true},
		{"conjunction disjoint", sub(
			message.Pred("sym", message.OpEq, message.String("IBM")),
			message.Between("price", message.Int(501), message.Int(600))), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Overlaps(a, tc.sub); got != tc.want {
				t.Errorf("Overlaps = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestOverlapsStringReasoning(t *testing.T) {
	a := adv(message.Pred("name", message.OpPrefix, message.String("To")))
	if !Overlaps(a, sub(message.Pred("name", message.OpEq, message.String("Toronto")))) {
		t.Error("Toronto has prefix To: overlap expected")
	}
	if Overlaps(a, sub(message.Pred("name", message.OpEq, message.String("Montreal")))) {
		t.Error("Montreal lacks prefix To: no overlap")
	}
	if !Overlaps(a, sub(message.Pred("name", message.OpPrefix, message.String("Tor")))) {
		t.Error("nested prefixes overlap")
	}
	if Overlaps(a, sub(message.Pred("name", message.OpPrefix, message.String("Mo")))) {
		t.Error("divergent prefixes cannot overlap")
	}
	// Conservative combinations answer true.
	if !Overlaps(a, sub(message.Pred("name", message.OpSuffix, message.String("onto")))) {
		t.Error("prefix+suffix is satisfiable (conservatively true)")
	}
}

func TestOverlapsOpenIntervals(t *testing.T) {
	a := adv(message.Pred("x", message.OpLt, message.Int(10)))
	if Overlaps(a, sub(message.Pred("x", message.OpGe, message.Int(10)))) {
		t.Error("x<10 and x>=10 are disjoint")
	}
	if !Overlaps(a, sub(message.Pred("x", message.OpGe, message.Int(9)))) {
		t.Error("x<10 and x>=9 share [9,10)")
	}
	b := adv(message.Pred("x", message.OpLe, message.Int(10)))
	if !Overlaps(b, sub(message.Pred("x", message.OpGe, message.Int(10)))) {
		t.Error("x<=10 and x>=10 share the point 10")
	}
	c := adv(message.Pred("x", message.OpGt, message.Int(5)))
	if Overlaps(c, sub(message.Pred("x", message.OpLt, message.Int(5)))) {
		t.Error("x>5 and x<5 are disjoint")
	}
}

func TestOverlapsEqNe(t *testing.T) {
	a := adv(message.Pred("k", message.OpEq, message.String("v")))
	if Overlaps(a, sub(message.Pred("k", message.OpNe, message.String("v")))) {
		t.Error("k=v and k!=v are disjoint")
	}
	if !Overlaps(a, sub(message.Pred("k", message.OpNe, message.String("w")))) {
		t.Error("k=v and k!=w overlap")
	}
}

// TestQuickOverlapsSound: if Overlaps says false, then no conforming
// event may match the subscription.
func TestQuickOverlapsSound(t *testing.T) {
	r := rand.New(rand.NewSource(606))
	checked := 0
	for trial := 0; trial < 3000; trial++ {
		// Advertisement from a random subscription shape.
		as := randSubscription(r, 1)
		a := NewAdvertisement("p", as.Preds...)
		s := randSubscription(r, 2)
		if Overlaps(a, s) {
			continue
		}
		checked++
		// Build events conforming to the advertisement; none may match s.
		for k := 0; k < 20; k++ {
			ev, ok := eventSatisfying(r, as)
			if !ok {
				break
			}
			// Strip unadvertised noise pairs so the event conforms.
			attrs := a.Attrs()
			var conforming message.Event
			for _, pair := range ev.Pairs() {
				if attrs[pair.Attr] {
					conforming.AddPair(pair)
				}
			}
			if conforming.Len() == 0 || !a.ConformsTo(conforming) {
				continue
			}
			if s.Matches(conforming) {
				t.Fatalf("UNSOUND: Overlaps=false but conforming event matches\n adv=%v\n sub=%v\n ev=%v",
					as, s, conforming)
			}
		}
	}
	if checked < 200 {
		t.Fatalf("only %d non-overlapping pairs exercised", checked)
	}
}

func TestOverlapsCoversConsistency(t *testing.T) {
	// If subscription b is covered by a, any advertisement overlapping b
	// must overlap a (a is weaker).
	r := rand.New(rand.NewSource(607))
	for trial := 0; trial < 2000; trial++ {
		a := randSubscription(r, 1)
		b := a.Clone()
		b.ID = 2
		b.Preds = append(b.Preds, randPredicate(r)) // narrow b
		if !Covers(a, b) {
			continue
		}
		advS := randSubscription(r, 3)
		advt := NewAdvertisement("p", advS.Preds...)
		if Overlaps(advt, b) && !Overlaps(advt, a) {
			t.Fatalf("inconsistent: adv overlaps covered %v but not covering %v (adv %v)", b, a, advS)
		}
	}
}
