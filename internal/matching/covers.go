package matching

import (
	"strings"

	"stopss/internal/message"
)

// Covers reports whether subscription a subsumes subscription b: every
// event that matches b also matches a. Covering is the standard
// subscription-management facility of content-based pub/sub systems
// (a broker may skip indexing b when an owner's a already covers it, and
// the web app uses it to flag redundant subscriptions).
//
// The check is SOUND but not complete: it decides implication predicate
// by predicate, so conjunction-level entailments (e.g. x > 1 ∧ x < 3
// jointly implying x != 5) are not discovered and yield a conservative
// false. Under the any-pair event semantics this pairwise rule is sound:
// if some pair satisfies the implying predicate of b, the same pair
// satisfies the implied predicate of a.
func Covers(a, b message.Subscription) bool {
	for _, pa := range a.Preds {
		implied := false
		for _, pb := range b.Preds {
			if pb.Attr == pa.Attr && implies(pb, pa) {
				implied = true
				break
			}
		}
		if !implied {
			return false
		}
	}
	return true
}

// Equivalent reports mutual covering.
func Equivalent(a, b message.Subscription) bool {
	return Covers(a, b) && Covers(b, a)
}

// implies reports whether satisfaction of pb (by one attribute value)
// guarantees satisfaction of pa by that same value. Both predicates are
// on the same attribute.
func implies(pb, pa message.Predicate) bool {
	// Identical predicates trivially imply each other.
	if pb.Canonical() == pa.Canonical() {
		return true
	}
	switch pa.Op {
	case message.OpExists:
		// Any satisfied value-level predicate witnesses existence.
		return pb.Op != message.OpNotExists
	case message.OpNotExists:
		return pb.Op == message.OpNotExists
	}
	if pb.Op == message.OpNotExists || pb.Op == message.OpExists {
		// Existence alone never pins a value.
		return false
	}

	switch pa.Op {
	case message.OpEq:
		return pb.Op == message.OpEq && pb.Val.Equal(pa.Val)

	case message.OpNe:
		switch pb.Op {
		case message.OpEq:
			c, ok := pb.Val.Compare(pa.Val)
			if ok {
				return c != 0
			}
			// Incomparable kinds are unequal by Eval's semantics.
			return !pb.Val.Equal(pa.Val)
		case message.OpNe:
			return pb.Val.Equal(pa.Val)
		case message.OpLt:
			return geCmp(pa.Val, pb.Val) // value < t and v >= t ⇒ value != v
		case message.OpLe:
			return gtCmp(pa.Val, pb.Val)
		case message.OpGt:
			return leCmp(pa.Val, pb.Val)
		case message.OpGe:
			return ltCmp(pa.Val, pb.Val)
		case message.OpBetween:
			return ltCmp(pa.Val, pb.Val) || gtCmp(pa.Val, pb.Hi)
		}
		return false

	case message.OpLt:
		switch pb.Op {
		case message.OpLt:
			return leCmp(pb.Val, pa.Val)
		case message.OpLe:
			return ltCmp(pb.Val, pa.Val)
		case message.OpEq:
			return ltCmp(pb.Val, pa.Val)
		case message.OpBetween:
			return ltCmp(pb.Hi, pa.Val)
		}
		return false

	case message.OpLe:
		switch pb.Op {
		case message.OpLt, message.OpLe, message.OpEq:
			return leCmp(pb.Val, pa.Val)
		case message.OpBetween:
			return leCmp(pb.Hi, pa.Val)
		}
		return false

	case message.OpGt:
		switch pb.Op {
		case message.OpGt:
			return geCmp(pb.Val, pa.Val)
		case message.OpGe:
			return gtCmp(pb.Val, pa.Val)
		case message.OpEq:
			return gtCmp(pb.Val, pa.Val)
		case message.OpBetween:
			return gtCmp(pb.Val, pa.Val)
		}
		return false

	case message.OpGe:
		switch pb.Op {
		case message.OpGt, message.OpGe, message.OpEq:
			return geCmp(pb.Val, pa.Val)
		case message.OpBetween:
			return geCmp(pb.Val, pa.Val)
		}
		return false

	case message.OpBetween:
		switch pb.Op {
		case message.OpEq:
			return geCmp(pb.Val, pa.Val) && leCmp(pb.Val, pa.Hi)
		case message.OpBetween:
			return geCmp(pb.Val, pa.Val) && leCmp(pb.Hi, pa.Hi)
		}
		return false

	case message.OpPrefix:
		switch pb.Op {
		case message.OpEq:
			return isStr(pb.Val) && strings.HasPrefix(pb.Val.Str(), pa.Val.Str())
		case message.OpPrefix:
			return strings.HasPrefix(pb.Val.Str(), pa.Val.Str())
		}
		return false

	case message.OpSuffix:
		switch pb.Op {
		case message.OpEq:
			return isStr(pb.Val) && strings.HasSuffix(pb.Val.Str(), pa.Val.Str())
		case message.OpSuffix:
			return strings.HasSuffix(pb.Val.Str(), pa.Val.Str())
		}
		return false

	case message.OpContains:
		switch pb.Op {
		case message.OpEq:
			return isStr(pb.Val) && strings.Contains(pb.Val.Str(), pa.Val.Str())
		case message.OpContains, message.OpPrefix, message.OpSuffix:
			return strings.Contains(pb.Val.Str(), pa.Val.Str())
		}
		return false
	}
	return false
}

func isStr(v message.Value) bool { return v.Kind() == message.KindString }

// Comparison helpers returning false for incomparable values (which is
// the conservative answer for implication).
func ltCmp(a, b message.Value) bool { c, ok := a.Compare(b); return ok && c < 0 }
func leCmp(a, b message.Value) bool { c, ok := a.Compare(b); return ok && c <= 0 }
func gtCmp(a, b message.Value) bool { c, ok := a.Compare(b); return ok && c > 0 }
func geCmp(a, b message.Value) bool { c, ok := a.Compare(b); return ok && c >= 0 }
