package matching

import (
	"fmt"

	"stopss/internal/message"
)

// Cluster implements the clustering approach of Fabret, Jacobsen,
// Llirbat, Pereira, Ross and Shasha, "Filtering algorithms and
// implementation for very fast publish/subscribe systems" (SIGMOD 2001) —
// citation [4] of the S-ToPSS paper.
//
// Each subscription is assigned an access predicate: one of its equality
// predicates (attribute, value). Subscriptions sharing an access
// predicate form a cluster stored in a hash table. Matching an event
// probes, for every (attribute, value) pair it carries, the cluster of
// that pair and verifies the member subscriptions' plans — in pushdown
// order with early exit, so the residual check is as cheap as the
// optimizer can make it. Subscriptions without any equality predicate
// cannot be clustered and live in a small fallback list that is scanned
// fully.
//
// The access predicate is chosen as the equality predicate whose
// (attr, value) cluster is currently smallest, a standard load-balancing
// heuristic from the paper.
type Cluster struct {
	planner
	clusters    map[string][]*kSub // access key → members
	unclustered []*kSub
	subs        map[message.SubID]*kSub
}

type kSub struct {
	id   message.SubID
	plan *Plan
	key  string // access cluster key; "" when unclustered
}

// accessKey builds the hash key of an equality predicate's cluster.
func accessKey(attr string, v message.Value) string {
	return attr + "\x1f" + v.Canonical()
}

// NewCluster returns an empty cluster matcher.
func NewCluster() *Cluster {
	return &Cluster{
		planner:  newPlanner(),
		clusters: make(map[string][]*kSub),
		subs:     make(map[message.SubID]*kSub),
	}
}

// Name implements Matcher.
func (m *Cluster) Name() string { return "cluster" }

// Size implements Matcher.
func (m *Cluster) Size() int { return len(m.subs) }

// Clusters reports the number of non-empty clusters (experiment T3
// statistic).
func (m *Cluster) Clusters() int { return len(m.clusters) }

// Unclustered reports how many subscriptions fell back to the scan list.
func (m *Cluster) Unclustered() int { return len(m.unclustered) }

// Add implements Matcher.
func (m *Cluster) Add(id message.SubID, p *Plan) error {
	if p == nil {
		return fmt.Errorf("matching: nil plan for subscription %d", id)
	}
	if _, dup := m.subs[id]; dup {
		return fmt.Errorf("matching: subscription %d already indexed", id)
	}
	ks := &kSub{id: id, plan: p}
	// Pick the equality predicate with the smallest current cluster.
	best, bestLen := "", -1
	for i := range p.Preds() {
		pp := &p.Preds()[i]
		if pp.Pred.Op != message.OpEq {
			continue
		}
		key := accessKey(pp.Pred.Attr, pp.Pred.Val)
		if n := len(m.clusters[key]); bestLen < 0 || n < bestLen {
			best, bestLen = key, n
		}
	}
	if best == "" {
		m.unclustered = append(m.unclustered, ks)
	} else {
		ks.key = best
		m.clusters[best] = append(m.clusters[best], ks)
	}
	m.subs[id] = ks
	m.retain(p)
	return nil
}

// Remove implements Matcher.
func (m *Cluster) Remove(id message.SubID) bool {
	ks, ok := m.subs[id]
	if !ok {
		return false
	}
	delete(m.subs, id)
	m.release(ks.plan)
	if ks.key == "" {
		m.unclustered = removeSub(m.unclustered, ks)
		return true
	}
	members := removeSub(m.clusters[ks.key], ks)
	if len(members) == 0 {
		delete(m.clusters, ks.key)
	} else {
		m.clusters[ks.key] = members
	}
	return true
}

func removeSub(s []*kSub, target *kSub) []*kSub {
	for i := range s {
		if s[i] == target {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// Match implements Matcher.
func (m *Cluster) Match(e message.Event, scratch []message.SubID) []message.SubID {
	m.view.reset(e)
	out, start := scratch, len(scratch)
	seenKeys := make(map[string]bool, e.Len())
	for _, pair := range e.Pairs() {
		key := accessKey(pair.Attr, pair.Val)
		if seenKeys[key] {
			continue // duplicate pair: same cluster, skip re-probe
		}
		seenKeys[key] = true
		for _, ks := range m.clusters[key] {
			if ks.plan.eval(&m.view) {
				out = append(out, ks.id)
			}
		}
	}
	for _, ks := range m.unclustered {
		if ks.plan.eval(&m.view) {
			out = append(out, ks.id)
		}
	}
	sortIDs(out[start:])
	return out
}
