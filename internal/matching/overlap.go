package matching

import (
	"math"
	"strings"

	"stopss/internal/message"
)

// Advertisements. The ToPSS system family (and the paper's web-service
// discovery analogy in §2, where "provided services [are analogous] to
// subscriptions") routes subscriptions only to publishers whose
// advertised event space overlaps them. An Advertisement is a
// conjunction of predicates describing every event the publisher will
// emit: each future event carries exactly the advertised attributes,
// with values satisfying the advertised constraints.

// Advertisement describes a publisher's event space.
type Advertisement struct {
	Publisher string
	Preds     []message.Predicate
}

// NewAdvertisement builds an advertisement.
func NewAdvertisement(publisher string, preds ...message.Predicate) Advertisement {
	a := Advertisement{Publisher: publisher, Preds: make([]message.Predicate, len(preds))}
	copy(a.Preds, preds)
	return a
}

// Validate checks the predicate list.
func (a Advertisement) Validate() error {
	s := message.Subscription{ID: 1, Preds: a.Preds}
	return s.Validate()
}

// Attrs returns the advertised attribute set.
func (a Advertisement) Attrs() map[string]bool {
	out := make(map[string]bool, len(a.Preds))
	for _, p := range a.Preds {
		if p.Op != message.OpNotExists {
			out[p.Attr] = true
		}
	}
	return out
}

// ConformsTo reports whether a concrete event stays inside the
// advertised space: every advertised predicate holds and the event
// carries no unadvertised attributes.
func (a Advertisement) ConformsTo(e message.Event) bool {
	attrs := a.Attrs()
	for _, pair := range e.Pairs() {
		if !attrs[pair.Attr] {
			return false
		}
	}
	for _, p := range a.Preds {
		if !p.Matches(e) {
			return false
		}
	}
	return true
}

// Overlaps reports whether some event in the advertised space could
// match the subscription. Like Covers, the check is SOUND in the
// conservative direction — a false result is definitive only when the
// per-attribute reasoning can prove emptiness; uncertain predicate
// combinations answer true, so no matching subscription is ever wrongly
// pruned.
func Overlaps(a Advertisement, s message.Subscription) bool {
	attrs := a.Attrs()
	for _, sp := range s.Preds {
		if sp.Op == message.OpNotExists {
			// Satisfiable iff the attribute is not advertised (all
			// advertised attributes appear in every event).
			if attrs[sp.Attr] {
				return false
			}
			continue
		}
		if !attrs[sp.Attr] {
			return false // events never carry this attribute
		}
		// Every advertised constraint on the attribute must be jointly
		// satisfiable with the subscription predicate.
		for _, ap := range a.Preds {
			if ap.Attr == sp.Attr && !satisfiable(ap, sp) {
				return false
			}
		}
	}
	return true
}

// satisfiable reports whether one value can satisfy both predicates.
// Conservative: unknown combinations return true.
func satisfiable(p, q message.Predicate) bool {
	// Existence constrains nothing at the value level.
	if p.Op == message.OpExists || q.Op == message.OpExists {
		return true
	}
	// Numeric interval reasoning.
	if pi, ok := interval(p); ok {
		if qi, ok2 := interval(q); ok2 {
			return pi.intersects(qi)
		}
	}
	// String reasoning.
	if ps, ok := strConstraintOf(p); ok {
		if qs, ok2 := strConstraintOf(q); ok2 {
			return strSatisfiable(ps, qs)
		}
	}
	// Equality against inequality of the same value.
	if p.Op == message.OpEq && q.Op == message.OpNe && p.Val.Equal(q.Val) {
		return false
	}
	if q.Op == message.OpEq && p.Op == message.OpNe && p.Val.Equal(q.Val) {
		return false
	}
	// Cross-kind equalities: Eq(string) vs numeric interval etc.
	if p.Op == message.OpEq && q.Op == message.OpEq && !p.Val.Equal(q.Val) {
		return false
	}
	return true
}

// numInterval is a closed/open numeric interval.
type numInterval struct {
	lo, hi         float64
	loOpen, hiOpen bool
}

// interval abstracts a predicate into a numeric interval when possible.
func interval(p message.Predicate) (numInterval, bool) {
	full := numInterval{lo: math.Inf(-1), hi: math.Inf(1)}
	switch p.Op {
	case message.OpEq:
		if f, ok := p.Val.AsFloat(); ok {
			return numInterval{lo: f, hi: f}, true
		}
	case message.OpLt:
		if f, ok := p.Val.AsFloat(); ok {
			full.hi, full.hiOpen = f, true
			return full, true
		}
	case message.OpLe:
		if f, ok := p.Val.AsFloat(); ok {
			full.hi = f
			return full, true
		}
	case message.OpGt:
		if f, ok := p.Val.AsFloat(); ok {
			full.lo, full.loOpen = f, true
			return full, true
		}
	case message.OpGe:
		if f, ok := p.Val.AsFloat(); ok {
			full.lo = f
			return full, true
		}
	case message.OpBetween:
		lo, ok1 := p.Val.AsFloat()
		hi, ok2 := p.Hi.AsFloat()
		if ok1 && ok2 {
			return numInterval{lo: lo, hi: hi}, true
		}
	}
	return numInterval{}, false
}

func (a numInterval) intersects(b numInterval) bool {
	lo, loOpen := a.lo, a.loOpen
	if b.lo > lo || (b.lo == lo && b.loOpen) {
		lo, loOpen = b.lo, b.loOpen
	}
	hi, hiOpen := a.hi, a.hiOpen
	if b.hi < hi || (b.hi == hi && b.hiOpen) {
		hi, hiOpen = b.hi, b.hiOpen
	}
	if lo < hi {
		return true
	}
	return lo == hi && !loOpen && !hiOpen
}

// strConstraint abstracts string predicates.
type strConstraint struct {
	op  message.Op // OpEq, OpPrefix, OpSuffix, OpContains
	val string
}

func strConstraintOf(p message.Predicate) (strConstraint, bool) {
	switch p.Op {
	case message.OpEq:
		if p.Val.Kind() == message.KindString {
			return strConstraint{op: message.OpEq, val: p.Val.Str()}, true
		}
	case message.OpPrefix, message.OpSuffix, message.OpContains:
		return strConstraint{op: p.Op, val: p.Val.Str()}, true
	}
	return strConstraint{}, false
}

func strSatisfiable(a, b strConstraint) bool {
	// Normalize so equality comes first when present.
	if b.op == message.OpEq && a.op != message.OpEq {
		a, b = b, a
	}
	switch {
	case a.op == message.OpEq && b.op == message.OpEq:
		return a.val == b.val
	case a.op == message.OpEq && b.op == message.OpPrefix:
		return strings.HasPrefix(a.val, b.val)
	case a.op == message.OpEq && b.op == message.OpSuffix:
		return strings.HasSuffix(a.val, b.val)
	case a.op == message.OpEq && b.op == message.OpContains:
		return strings.Contains(a.val, b.val)
	case a.op == message.OpPrefix && b.op == message.OpPrefix:
		return strings.HasPrefix(a.val, b.val) || strings.HasPrefix(b.val, a.val)
	default:
		// suffix/contains combinations: a witness can usually be
		// constructed (e.g. prefix+suffix → concatenate), so true.
		return true
	}
}
