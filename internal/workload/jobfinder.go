package workload

import (
	"fmt"
	"math/rand"

	"stopss/internal/message"
)

// JobsODL is the job-finder domain ontology of the paper's running
// examples (§1, §3.1, §4), expressed in ODL. The demonstration scenario,
// the examples and several experiments load it.
const JobsODL = `
# Job-finder domain (paper sections 1, 3.1 and 4).
domain jobs

synonyms {
    university: school, college, "alma mater"
    "professional experience": "work experience"
    degree: diploma, qualification
    position: role, title
    skill: competency
}

concepts {
    degree-level {
        "graduate degree" { PhD MSc MBA }
        "undergraduate degree" { BSc BA }
    }
    "software developer" {
        "mainframe developer" { "COBOL programmer" }
        "web developer" { "frontend developer" "backend developer" }
    }
}

mappings {
    # professional experience = present date - graduation year (paper 3.1);
    # present date fixed to the publication year of the paper.
    rule experience_from_graduation
        when exists("graduation year")
        derive "professional experience" = 2003 - attr("graduation year")

    # A mainframe developer resume implies COBOL skills and the 1960-1980
    # era (paper section 1).
    map position "mainframe developer" -> skill "COBOL", era "1960-1980"
    map position "COBOL programmer" -> skill "COBOL", era "1960-1980"
}
`

// AutosODL is a second, disjoint domain used by the multi-domain
// experiment (T7) and example. It deliberately contains no reference to
// the jobs domain: inter-domain bridges are added as extra mapping
// functions at merge time (paper §3.2), which experiment T7 and
// examples/multidomain demonstrate.
const AutosODL = `
domain autos

synonyms {
    car: automobile, auto
    price: cost
}

concepts {
    vehicle {
        car { sedan suv "sports car" }
        truck { pickup van }
    }
}

mappings {
    map car "vintage" -> era "pre-1970"
}
`

// universities, degrees and companies feed the job-finder generator.
var (
	universities = []string{"Toronto", "Waterloo", "McGill", "UBC", "Queens", "York", "Carleton"}
	degrees      = []string{"PhD", "MSc", "MBA", "BSc", "BA"}
	companies    = []string{"IBM", "Microsoft", "Nortel", "RIM", "Sun", "Oracle", "ATI"}
	positions    = []string{"mainframe developer", "web developer", "frontend developer", "backend developer", "COBOL programmer"}
	skills       = []string{"COBOL", "Java", "C++", "SQL", "Perl"}
)

// JobFinder generates the paper's demonstration scenario: companies
// subscribe with qualification requirements; candidates publish resumes.
type JobFinder struct {
	rng    *rand.Rand
	nextID message.SubID
}

// NewJobFinder builds a deterministic job-finder generator.
func NewJobFinder(seed int64) *JobFinder {
	return &JobFinder{rng: rand.New(rand.NewSource(seed))}
}

// RecruiterSubscription produces one company subscription. Recruiters
// use canonical terminology (root attributes) and often general degree
// concepts — exactly the subscriber side of the paper's model.
func (j *JobFinder) RecruiterSubscription(company string) message.Subscription {
	j.nextID++
	var preds []message.Predicate
	preds = append(preds, message.Pred("university", message.OpEq,
		message.String(universities[j.rng.Intn(len(universities))])))
	switch j.rng.Intn(3) {
	case 0: // specific degree
		preds = append(preds, message.Pred("degree", message.OpEq,
			message.String(degrees[j.rng.Intn(len(degrees))])))
	case 1: // general degree concept — needs the hierarchy to match
		preds = append(preds, message.Pred("degree", message.OpEq,
			message.String("graduate degree")))
	}
	if j.rng.Intn(2) == 0 {
		preds = append(preds, message.Pred("professional experience", message.OpGe,
			message.Int(int64(1+j.rng.Intn(10)))))
	}
	if j.rng.Intn(4) == 0 {
		preds = append(preds, message.Pred("skill", message.OpEq,
			message.String(skills[j.rng.Intn(len(skills))])))
	}
	return message.NewSubscription(j.nextID, company, preds...)
}

// Resume produces one candidate publication. Candidates use the
// publisher-side vocabulary: "school" instead of "university",
// "graduation year" instead of experience, specific degrees and
// positions — the semantic gap the system must bridge.
func (j *JobFinder) Resume() message.Event {
	var ev message.Event
	ev.Add("school", message.String(universities[j.rng.Intn(len(universities))]))
	ev.Add("degree", message.String(degrees[j.rng.Intn(len(degrees))]))
	ev.Add("graduation year", message.Int(int64(1980+j.rng.Intn(23)))) // 1980..2002
	ev.Add("position", message.String(positions[j.rng.Intn(len(positions))]))
	for k := 0; k < 1+j.rng.Intn(2); k++ {
		ev.Add(fmt.Sprintf("job%d", k+1), message.String(companies[j.rng.Intn(len(companies))]))
	}
	return ev
}

// Recruiters generates n company subscriptions.
func (j *JobFinder) Recruiters(n int) []message.Subscription {
	out := make([]message.Subscription, n)
	for i := range out {
		out[i] = j.RecruiterSubscription(fmt.Sprintf("company-%d", i))
	}
	return out
}

// Resumes generates n candidate publications.
func (j *JobFinder) Resumes(n int) []message.Event {
	out := make([]message.Event, n)
	for i := range out {
		out[i] = j.Resume()
	}
	return out
}
