package workload

import (
	"strings"
	"testing"

	"stopss/internal/core"
	"stopss/internal/message"
	"stopss/internal/ontology"
	"stopss/internal/semantic"
)

func TestGeneratorDeterministic(t *testing.T) {
	a, err := New(Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		ea, eb := a.Event(), b.Event()
		if !ea.Equal(eb) {
			t.Fatalf("same seed diverged at event %d: %v vs %v", i, ea, eb)
		}
		sa, sb := a.Subscription("c"), b.Subscription("c")
		if sa.Canonical() != sb.Canonical() {
			t.Fatalf("same seed diverged at subscription %d", i)
		}
	}
	c, err := New(Config{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := 0; i < 20; i++ {
		if a.Event().Equal(c.Event()) {
			same++
		}
	}
	if same == 20 {
		t.Error("different seeds produced identical streams")
	}
}

func TestGeneratedShapesRespectConfig(t *testing.T) {
	cfg := Config{Seed: 1, PredsMin: 2, PredsMax: 3, PairsMin: 4, PairsMax: 6}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		s := g.Subscription("c")
		if len(s.Preds) < 2 || len(s.Preds) > 3 {
			t.Fatalf("subscription has %d predicates, want 2..3", len(s.Preds))
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("generated subscription invalid: %v", err)
		}
		e := g.Event()
		if e.Len() < 4 || e.Len() > 6 {
			t.Fatalf("event has %d pairs, want 4..6", e.Len())
		}
		if err := e.Validate(); err != nil {
			t.Fatalf("generated event invalid: %v", err)
		}
	}
}

func TestSubscriptionIDsUnique(t *testing.T) {
	g, err := New(Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[message.SubID]bool)
	for _, s := range g.Subscriptions(500) {
		if seen[s.ID] {
			t.Fatalf("duplicate subscription ID %d", s.ID)
		}
		seen[s.ID] = true
	}
}

func TestKBStructure(t *testing.T) {
	g, err := New(Config{Seed: 3, Attributes: 10, SynonymsPerAttr: 2,
		ConceptTrees: 2, ConceptDepth: 3, ConceptFanout: 2, MappingChains: 2, ChainLength: 3})
	if err != nil {
		t.Fatal(err)
	}
	kb := g.KB()
	// 10 roots + 20 synonyms.
	if kb.Synonyms.Len() != 30 {
		t.Errorf("synonym terms = %d, want 30", kb.Synonyms.Len())
	}
	// Each tree: 1 + 2 + 4 + 8 = 15 nodes; 2 trees = 30.
	if kb.Hierarchy.Len() != 30 {
		t.Errorf("concepts = %d, want 30", kb.Hierarchy.Len())
	}
	if kb.Mappings.Len() != 6 {
		t.Errorf("mapping funcs = %d, want 6", kb.Mappings.Len())
	}
	// Synonyms resolve to roots.
	if got, _ := kb.Synonyms.Canonical("attr03~syn1"); got != "attr03" {
		t.Errorf("Canonical(attr03~syn1) = %q", got)
	}
	// Leaves are IsA roots.
	if !kb.Hierarchy.IsA("concept0.0.0.0", "concept0") {
		t.Error("tree leaf should be IsA its root")
	}
}

func TestSemanticWorkloadProducesSemanticMatches(t *testing.T) {
	// The point of the generator: with synonyms in play, semantic mode
	// must find strictly more matches than syntactic mode.
	g, err := New(Config{Seed: 4, SynonymProb: 0.9, ConceptProb: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	subs := g.Subscriptions(300)
	events := g.Events(300)

	count := func(mode core.Mode) int {
		eng := core.NewEngine(g.KB().Stage(semantic.FullConfig()), core.WithMode(mode))
		for _, s := range subs {
			if err := eng.Subscribe(s); err != nil {
				t.Fatal(err)
			}
		}
		total := 0
		for _, e := range events {
			res, err := eng.Publish(e)
			if err != nil {
				t.Fatal(err)
			}
			total += len(res.Matches)
		}
		return total
	}
	sem := count(core.Semantic)
	syn := count(core.Syntactic)
	if sem <= syn {
		t.Errorf("semantic matches (%d) should exceed syntactic (%d) on a synonym-heavy workload", sem, syn)
	}
}

func TestChainSeedTriggersFixpoint(t *testing.T) {
	g, err := New(Config{Seed: 5, MappingChains: 1, ChainLength: 4})
	if err != nil {
		t.Fatal(err)
	}
	st := g.KB().Stage(semantic.Config{Mappings: true, MaxRounds: 8})
	res := st.ProcessEvent(g.ChainSeed(0))
	// hop0 derives hop1 derives hop2 …: expect ChainLength derived events.
	if len(res.Events) != 5 {
		t.Errorf("chain expansion produced %d events, want 5 (root + 4 hops)", len(res.Events))
	}
	if res.Rounds < 4 {
		t.Errorf("Rounds = %d, want >= 4", res.Rounds)
	}
}

func TestJobFinderScenario(t *testing.T) {
	jf := NewJobFinder(11)
	subs := jf.Recruiters(50)
	for _, s := range subs {
		if err := s.Validate(); err != nil {
			t.Fatalf("invalid recruiter subscription: %v", err)
		}
		if !strings.HasPrefix(s.Subscriber, "company-") {
			t.Fatalf("subscriber = %q", s.Subscriber)
		}
	}
	resumes := jf.Resumes(50)
	for _, e := range resumes {
		if err := e.Validate(); err != nil {
			t.Fatalf("invalid resume: %v", err)
		}
		if !e.Has("school") || !e.Has("graduation year") {
			t.Fatalf("resume missing publisher-side vocabulary: %v", e)
		}
		if e.Has("university") {
			t.Fatalf("resume should use publisher vocabulary, got %v", e)
		}
	}

	// End to end through the jobs ontology: semantic mode must produce
	// matches (resumes never say "university", so syntactic mode finds
	// nothing for university predicates).
	ont, err := ontology.Load(JobsODL, ontology.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(ont.Stage(semantic.FullConfig()))
	for _, s := range subs {
		if err := eng.Subscribe(s); err != nil {
			t.Fatal(err)
		}
	}
	semMatches := 0
	for _, e := range resumes {
		res, err := eng.Publish(e)
		if err != nil {
			t.Fatal(err)
		}
		semMatches += len(res.Matches)
	}
	if semMatches == 0 {
		t.Fatal("job-finder scenario produced no semantic matches")
	}
	if err := eng.SetMode(core.Syntactic); err != nil {
		t.Fatal(err)
	}
	synMatches := 0
	for _, e := range resumes {
		res, err := eng.Publish(e)
		if err != nil {
			t.Fatal(err)
		}
		synMatches += len(res.Matches)
	}
	if synMatches >= semMatches {
		t.Errorf("syntactic (%d) should find fewer matches than semantic (%d)", synMatches, semMatches)
	}
}

func TestAutosODLCompiles(t *testing.T) {
	ont, err := ontology.Load(AutosODL, ontology.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ont.Hierarchy.IsA("sedan", "vehicle") {
		t.Error("autos hierarchy incomplete")
	}
	if got, _ := ont.Synonyms.Canonical("automobile"); got != "car" {
		t.Error("autos synonyms incomplete")
	}
}

func TestConfigDefaultsApplied(t *testing.T) {
	g, err := New(Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if g.cfg.Attributes != 20 || g.cfg.PredsMax != 4 || g.cfg.SynonymProb != 0.5 {
		t.Errorf("defaults not applied: %+v", g.cfg)
	}
	// Degenerate bounds are repaired.
	g2, err := New(Config{Seed: 9, PredsMin: 5, PredsMax: 2, PairsMin: 7, PairsMax: 3})
	if err != nil {
		t.Fatal(err)
	}
	if g2.cfg.PredsMax != 5 || g2.cfg.PairsMax != 7 {
		t.Errorf("bound repair failed: %+v", g2.cfg)
	}
}
