// Package workload generates random subscriptions and publications — the
// workload generator of the demonstration setup (paper §4: "We also
// include a workload generator that simulates many concurrent clients
// and companies sending their subscriptions and publications … The
// workload generator creates publications and subscriptions at random.")
//
// The generator is deterministic given its seed. It can synthesize not
// only the messages but also the knowledge structures they semantically
// relate through (synonym tables, concept trees, mapping chains), which
// is what the experiments of EXPERIMENTS.md sweep over.
package workload

import (
	"fmt"
	"math/rand"

	"stopss/internal/message"
	"stopss/internal/semantic"
)

// Config controls the shape of the generated workload.
type Config struct {
	Seed int64

	// Vocabulary.
	Attributes    int     // distinct root attributes (default 20)
	ValuesPerAttr int     // distinct string values per attribute (default 50)
	NumericAttrs  int     // how many of the attributes are numeric (default Attributes/4)
	NumericRange  int     // numeric values are drawn from [0, NumericRange) (default 100)
	ZipfSkew      float64 // attribute popularity skew; 0 = uniform, >1 enables Zipf (default 1.2)

	// Subscription shape.
	PredsMin     int     // minimum predicates per subscription (default 1)
	PredsMax     int     // maximum predicates per subscription (default 4)
	EqualityFrac float64 // fraction of equality predicates; the rest are ranges (default 0.7)

	// Publication shape.
	PairsMin int // minimum pairs per publication (default 3)
	PairsMax int // maximum pairs per publication (default 8)

	// Semantic knowledge synthesized by BuildKB.
	SynonymsPerAttr int // synonym variants per root attribute (default 3)
	ConceptTrees    int // number of value-concept trees (default 4)
	ConceptDepth    int // depth of each tree (default 4)
	ConceptFanout   int // children per node (default 3)
	MappingChains   int // number of mapping-function chains (default 2)
	ChainLength     int // hops per chain (default 2)

	// Semantic usage in generated messages.
	SynonymProb float64 // probability an event attribute uses a synonym variant (default 0.5)
	ConceptProb float64 // probability a value is a concept-tree term (default 0.3)
}

func (c Config) withDefaults() Config {
	def := func(v *int, d int) {
		if *v <= 0 {
			*v = d
		}
	}
	def(&c.Attributes, 20)
	def(&c.ValuesPerAttr, 50)
	if c.NumericAttrs <= 0 {
		c.NumericAttrs = c.Attributes / 4
	}
	def(&c.NumericRange, 100)
	if c.ZipfSkew == 0 {
		c.ZipfSkew = 1.2
	}
	def(&c.PredsMin, 1)
	def(&c.PredsMax, 4)
	if c.PredsMax < c.PredsMin {
		c.PredsMax = c.PredsMin
	}
	if c.EqualityFrac <= 0 || c.EqualityFrac > 1 {
		c.EqualityFrac = 0.7
	}
	def(&c.PairsMin, 3)
	def(&c.PairsMax, 8)
	if c.PairsMax < c.PairsMin {
		c.PairsMax = c.PairsMin
	}
	def(&c.SynonymsPerAttr, 3)
	def(&c.ConceptTrees, 4)
	def(&c.ConceptDepth, 4)
	def(&c.ConceptFanout, 3)
	def(&c.MappingChains, 2)
	def(&c.ChainLength, 2)
	if c.SynonymProb == 0 {
		c.SynonymProb = 0.5
	}
	if c.ConceptProb == 0 {
		c.ConceptProb = 0.3
	}
	return c
}

// KB is the synthesized knowledge base accompanying a workload: the
// synonym table, concept hierarchy and mapping functions that make the
// generated events and subscriptions semantically related.
type KB struct {
	Synonyms  *semantic.Synonyms
	Hierarchy *semantic.Hierarchy
	Mappings  *semantic.Mappings

	attrSyns   map[string][]string // root attr → synonym variants
	treeLevels [][][]string        // tree → level → terms (level 0 = root)
}

// Stage builds a semantic stage over the knowledge base.
func (kb *KB) Stage(cfg semantic.Config) *semantic.Stage {
	return semantic.NewStage(kb.Synonyms, kb.Hierarchy, kb.Mappings, cfg)
}

// Generator produces random subscriptions and publications.
type Generator struct {
	cfg  Config
	rng  *rand.Rand
	zipf *rand.Zipf

	attrs   []string // root attributes
	numeric map[string]bool
	values  map[string][]string // root attr → string value pool
	kb      *KB
	nextSub message.SubID
}

// New builds a generator. The knowledge base is synthesized eagerly so
// that Subscriptions and Events can weave synonyms and concepts in.
func New(cfg Config) (*Generator, error) {
	cfg = cfg.withDefaults()
	g := &Generator{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		numeric: make(map[string]bool),
		values:  make(map[string][]string),
	}
	if cfg.ZipfSkew > 1 {
		g.zipf = rand.NewZipf(g.rng, cfg.ZipfSkew, 1, uint64(cfg.Attributes-1))
	}
	for i := 0; i < cfg.Attributes; i++ {
		attr := fmt.Sprintf("attr%02d", i)
		g.attrs = append(g.attrs, attr)
		if i < cfg.NumericAttrs {
			g.numeric[attr] = true
			continue
		}
		pool := make([]string, cfg.ValuesPerAttr)
		for v := range pool {
			pool[v] = fmt.Sprintf("%s-val%03d", attr, v)
		}
		g.values[attr] = pool
	}
	kb, err := g.buildKB()
	if err != nil {
		return nil, err
	}
	g.kb = kb
	return g, nil
}

// KB returns the synthesized knowledge base.
func (g *Generator) KB() *KB { return g.kb }

// buildKB synthesizes synonyms for every attribute, value-concept trees
// and mapping chains.
func (g *Generator) buildKB() (*KB, error) {
	kb := &KB{
		Synonyms:  semantic.NewSynonyms(),
		Hierarchy: semantic.NewHierarchy(),
		Mappings:  semantic.NewMappings(),
		attrSyns:  make(map[string][]string),
	}
	for _, attr := range g.attrs {
		var syns []string
		for s := 0; s < g.cfg.SynonymsPerAttr; s++ {
			syns = append(syns, fmt.Sprintf("%s~syn%d", attr, s))
		}
		if err := kb.Synonyms.AddGroup(attr, syns...); err != nil {
			return nil, fmt.Errorf("workload: building synonyms: %w", err)
		}
		kb.attrSyns[attr] = syns
	}
	for t := 0; t < g.cfg.ConceptTrees; t++ {
		levels := make([][]string, g.cfg.ConceptDepth+1)
		root := fmt.Sprintf("concept%d", t)
		levels[0] = []string{root}
		for d := 1; d <= g.cfg.ConceptDepth; d++ {
			for _, parent := range levels[d-1] {
				for f := 0; f < g.cfg.ConceptFanout; f++ {
					child := fmt.Sprintf("%s.%d", parent, f)
					if err := kb.Hierarchy.AddIsA(child, parent); err != nil {
						return nil, fmt.Errorf("workload: building hierarchy: %w", err)
					}
					levels[d] = append(levels[d], child)
				}
			}
		}
		kb.treeLevels = append(kb.treeLevels, levels)
	}
	for c := 0; c < g.cfg.MappingChains; c++ {
		for k := 0; k < g.cfg.ChainLength; k++ {
			src := fmt.Sprintf("chain%d-hop%d", c, k)
			dst := fmt.Sprintf("chain%d-hop%d", c, k+1)
			f := semantic.FuncOf{
				FName:     fmt.Sprintf("chain%d-rule%d", c, k),
				FTriggers: []string{src},
				FApply: func(src, dst string) func(message.Event) []message.Pair {
					return func(e message.Event) []message.Pair {
						v, ok := e.Get(src)
						if !ok {
							return nil
						}
						f, ok := v.AsFloat()
						if !ok {
							return nil
						}
						return []message.Pair{{Attr: dst, Val: message.Int(int64(f) + 1)}}
					}
				}(src, dst),
			}
			if err := kb.Mappings.Add(f); err != nil {
				return nil, fmt.Errorf("workload: building mappings: %w", err)
			}
		}
	}
	return kb, nil
}

// pickAttr draws a root attribute with Zipf-skewed popularity.
func (g *Generator) pickAttr() string {
	if g.zipf != nil {
		return g.attrs[int(g.zipf.Uint64())]
	}
	return g.attrs[g.rng.Intn(len(g.attrs))]
}

// eventAttrName maps a root attribute to the surface form a publisher
// would use: the root itself or, with SynonymProb, one of its synonyms.
func (g *Generator) eventAttrName(root string) string {
	syns := g.kb.attrSyns[root]
	if len(syns) > 0 && g.rng.Float64() < g.cfg.SynonymProb {
		return syns[g.rng.Intn(len(syns))]
	}
	return root
}

// conceptTerm draws a term from a random tree at the given level
// (0 = most general root, ConceptDepth = leaves).
func (g *Generator) conceptTerm(level int) string {
	if len(g.kb.treeLevels) == 0 {
		return "concept-less"
	}
	levels := g.kb.treeLevels[g.rng.Intn(len(g.kb.treeLevels))]
	if level < 0 {
		level = 0
	}
	if level > len(levels)-1 {
		level = len(levels) - 1
	}
	terms := levels[level]
	return terms[g.rng.Intn(len(terms))]
}

// stringValue draws a plain string value for the attribute.
func (g *Generator) stringValue(root string) string {
	pool := g.values[root]
	if len(pool) == 0 {
		return root + "-val000"
	}
	return pool[g.rng.Intn(len(pool))]
}

// Subscription generates one subscription. Subscriptions use ROOT
// attribute names and — when drawing concept terms — GENERAL terms
// (levels 0..depth-1), matching the paper's model of subscribers asking
// for general concepts while publishers supply specialized ones.
func (g *Generator) Subscription(subscriber string) message.Subscription {
	g.nextSub++
	n := g.cfg.PredsMin + g.rng.Intn(g.cfg.PredsMax-g.cfg.PredsMin+1)
	preds := make([]message.Predicate, 0, n)
	seen := make(map[string]bool, n)
	for len(preds) < n {
		root := g.pickAttr()
		if seen[root] {
			continue
		}
		seen[root] = true
		if g.numeric[root] {
			x := int64(g.rng.Intn(g.cfg.NumericRange))
			if g.rng.Float64() < g.cfg.EqualityFrac {
				preds = append(preds, message.Pred(root, message.OpEq, message.Int(x)))
			} else if g.rng.Intn(2) == 0 {
				preds = append(preds, message.Pred(root, message.OpGe, message.Int(x)))
			} else {
				preds = append(preds, message.Pred(root, message.OpLe, message.Int(x)))
			}
			continue
		}
		var val string
		if g.rng.Float64() < g.cfg.ConceptProb {
			val = g.conceptTerm(g.rng.Intn(g.cfg.ConceptDepth)) // general term
		} else {
			val = g.stringValue(root)
		}
		preds = append(preds, message.Pred(root, message.OpEq, message.String(val)))
	}
	return message.NewSubscription(g.nextSub, subscriber, preds...)
}

// Event generates one publication. Events use synonym attribute variants
// with SynonymProb and SPECIALIZED concept terms (leaves) with
// ConceptProb.
func (g *Generator) Event() message.Event {
	n := g.cfg.PairsMin + g.rng.Intn(g.cfg.PairsMax-g.cfg.PairsMin+1)
	var ev message.Event
	for i := 0; i < n; i++ {
		root := g.pickAttr()
		attr := g.eventAttrName(root)
		if g.numeric[root] {
			ev.Add(attr, message.Int(int64(g.rng.Intn(g.cfg.NumericRange))))
			continue
		}
		if g.rng.Float64() < g.cfg.ConceptProb {
			ev.Add(attr, message.String(g.conceptTerm(g.cfg.ConceptDepth))) // leaf
		} else {
			ev.Add(attr, message.String(g.stringValue(root)))
		}
	}
	return ev
}

// ChainSeed returns an event that triggers mapping chain c from hop 0,
// for the fixpoint experiments (T6).
func (g *Generator) ChainSeed(c int) message.Event {
	return message.E(fmt.Sprintf("chain%d-hop0", c%maxInt(1, g.cfg.MappingChains)), 0)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Subscriptions generates n subscriptions for numbered subscribers.
func (g *Generator) Subscriptions(n int) []message.Subscription {
	out := make([]message.Subscription, n)
	for i := range out {
		out[i] = g.Subscription(fmt.Sprintf("client-%d", i%97))
	}
	return out
}

// Events generates n publications.
func (g *Generator) Events(n int) []message.Event {
	out := make([]message.Event, n)
	for i := range out {
		out[i] = g.Event()
	}
	return out
}
