package semantic

import (
	"fmt"
	"sync"
	"sync/atomic"

	"stopss/internal/message"
)

// Config selects which semantic mechanisms a Stage applies and how far
// they may expand an event. It is the paper's loss-tolerance knob
// (§3.2): "allow the user to inform the system about how much
// information loss the user is willing to tolerate. For example, one may
// only want synonym semantics to be used or one may restrict the level
// of a match generality."
type Config struct {
	// Synonyms enables the attribute-level synonym rewrite (approach 1).
	Synonyms bool
	// Hierarchy enables concept-hierarchy generalization (approach 2).
	Hierarchy bool
	// Mappings enables mapping functions (approach 3).
	Mappings bool

	// SynonymValues extends the synonym rewrite to string values. The
	// paper notes approach 1 "operates only at attribute level and does
	// not consider the semantics at the value level"; this flag is our
	// extension beyond the paper and defaults to off.
	SynonymValues bool

	// MaxGeneralization bounds how many hierarchy levels an event may
	// be generalized upward; 0 means unlimited. Level 1 admits direct
	// parents only, etc.
	MaxGeneralization int

	// MaxRounds bounds the CH/MF fixpoint iterations (paper §3.2: the
	// two stages "can be executed multiple times" because each may
	// enable the other). 0 selects DefaultMaxRounds.
	MaxRounds int

	// MaxEvents caps the total number of derived events per
	// publication, guarding against pathological mapping cycles.
	// 0 selects DefaultMaxEvents.
	MaxEvents int
}

// Default fixpoint bounds.
const (
	DefaultMaxRounds = 4
	DefaultMaxEvents = 64
)

// FullConfig enables all three approaches with default bounds.
func FullConfig() Config {
	return Config{Synonyms: true, Hierarchy: true, Mappings: true}
}

// SyntacticConfig disables the whole semantic stage — the paper's
// "syntactic mode" (§4).
func SyntacticConfig() Config { return Config{} }

// Stage is the semantic stage of Figure 1: synonym rewrite first, then a
// fixpoint of concept-hierarchy and mapping-function expansion, feeding
// the matching algorithm a set of events derived from the original one.
//
// A Stage is safe for concurrent use, and — unlike the original
// read-only design — safely mutable at runtime: all state (the three
// knowledge structures plus the configuration) lives behind one
// atomically swapped snapshot. Readers (ProcessEvent,
// ProcessSubscription) load the snapshot once and therefore never
// observe a half-applied knowledge update or configuration change;
// writers (SetConfig, Replace) install a fresh snapshot under a writer
// lock. The structures inside a snapshot are treated as immutable:
// knowledge updates clone-and-swap (internal/knowledge), they never
// mutate in place.
type Stage struct {
	wmu  sync.Mutex // serializes writers; readers only load snap
	snap atomic.Pointer[stageSnap]
	// version counts snapshot installs. Expansion memoizers key their
	// validity on it: any snapshot swap — knowledge update, ontology
	// replace, config change — bumps it, so a cached expansion is valid
	// exactly while the version it was computed under is current.
	version atomic.Uint64
}

// stageSnap is one immutable view of the stage.
type stageSnap struct {
	syn  *Synonyms
	hier *Hierarchy
	maps *Mappings
	cfg  Config
}

// NewStage builds a stage over the given knowledge structures. Nil
// structures are replaced by empty ones, so a Stage is always safe to
// call.
func NewStage(syn *Synonyms, hier *Hierarchy, maps *Mappings, cfg Config) *Stage {
	if syn == nil {
		syn = NewSynonyms()
	}
	if hier == nil {
		hier = NewHierarchy()
	}
	if maps == nil {
		maps = NewMappings()
	}
	st := &Stage{}
	st.snap.Store(&stageSnap{syn: syn, hier: hier, maps: maps, cfg: cfg})
	st.version.Store(1)
	return st
}

// Version reports the current snapshot version; it changes on every
// SetConfig or Replace.
func (st *Stage) Version() uint64 { return st.version.Load() }

// load returns the current snapshot (never nil).
func (st *Stage) load() *stageSnap { return st.snap.Load() }

// Synonyms exposes the stage's current synonym table (for inspection and
// stats). Callers must treat it as read-only.
func (st *Stage) Synonyms() *Synonyms { return st.load().syn }

// Hierarchy exposes the stage's current concept hierarchy (read-only).
func (st *Stage) Hierarchy() *Hierarchy { return st.load().hier }

// Mappings exposes the stage's current mapping-function registry
// (read-only).
func (st *Stage) Mappings() *Mappings { return st.load().maps }

// Config returns the stage configuration.
func (st *Stage) Config() Config { return st.load().cfg }

// SetConfig replaces the configuration (used by the web app's mode
// switch and the loss-tolerance endpoint). The swap is atomic: an
// in-flight ProcessEvent finishes under the configuration it started
// with.
func (st *Stage) SetConfig(cfg Config) {
	st.wmu.Lock()
	defer st.wmu.Unlock()
	cur := st.load()
	st.snap.Store(&stageSnap{syn: cur.syn, hier: cur.hier, maps: cur.maps, cfg: cfg})
	st.version.Add(1)
}

// Replace atomically installs new knowledge structures, keeping the
// current configuration. Nil arguments keep the corresponding current
// structure. The knowledge base (internal/knowledge) uses this to apply
// delta updates copy-on-write: in-flight ProcessEvent calls keep the
// snapshot they loaded and never see a half-applied delta.
func (st *Stage) Replace(syn *Synonyms, hier *Hierarchy, maps *Mappings) {
	st.wmu.Lock()
	defer st.wmu.Unlock()
	cur := st.load()
	if syn == nil {
		syn = cur.syn
	}
	if hier == nil {
		hier = cur.hier
	}
	if maps == nil {
		maps = cur.maps
	}
	st.snap.Store(&stageSnap{syn: syn, hier: hier, maps: maps, cfg: cur.cfg})
	st.version.Add(1)
}

// Result reports what the semantic stage did to one publication.
type Result struct {
	// Events are the derived events entering the matching algorithm:
	// Events[0] is always the (possibly synonym-rewritten) root event;
	// further entries come from hierarchy and mapping expansion. Each
	// derived event contains all pairs of its parent, so matching all
	// of them and unioning the results realizes Figure 1.
	Events []message.Event

	SynonymRewrites int  // attribute/value rewrites applied
	HierarchyPairs  int  // generalized pairs added
	MappingPairs    int  // pairs derived by mapping functions
	MappingCalls    int  // mapping function invocations
	Rounds          int  // fixpoint rounds executed
	Deduplicated    int  // derived events dropped as duplicates
	Truncated       bool // expansion hit MaxEvents
}

// ProcessEvent runs the full Figure 1 pipeline on a publication.
func (st *Stage) ProcessEvent(e message.Event) Result {
	return st.load().processEvent(e)
}

func (sn *stageSnap) processEvent(e message.Event) Result {
	var res Result

	root := e.Clone()
	if sn.cfg.Synonyms {
		root, res.SynonymRewrites = sn.rewriteEvent(root)
	}
	res.Events = []message.Event{root}

	if !sn.cfg.Hierarchy && !sn.cfg.Mappings {
		return res
	}

	maxRounds := sn.cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}
	maxEvents := sn.cfg.MaxEvents
	if maxEvents <= 0 {
		maxEvents = DefaultMaxEvents
	}

	// derived tracks provenance: events produced by the hierarchy stage
	// do not re-enter it. Ancestors is transitive, so one generalization
	// pass per derivation is complete; re-entering would let repeated
	// rounds climb past the MaxGeneralization bound (the loss knob).
	type derived struct {
		ev     message.Event
		fromCH bool
	}

	seen := map[string]bool{root.Signature(): true}
	frontier := []derived{{ev: root}}

	admit := func(ev message.Event) bool {
		sig := ev.Signature()
		if seen[sig] {
			res.Deduplicated++
			return false
		}
		if len(res.Events) >= maxEvents {
			res.Truncated = true
			return false
		}
		seen[sig] = true
		res.Events = append(res.Events, ev)
		return true
	}

	for round := 0; round < maxRounds && len(frontier) > 0; round++ {
		var next []derived
		for _, d := range frontier {
			if sn.cfg.Hierarchy && !d.fromCH {
				if gen, added := sn.generalize(d.ev); added > 0 {
					res.HierarchyPairs += added
					if admit(gen) {
						next = append(next, derived{ev: gen, fromCH: true})
					}
				}
			}
			if sn.cfg.Mappings {
				for _, f := range sn.maps.Applicable(d.ev) {
					res.MappingCalls++
					pairs := f.Apply(d.ev)
					if len(pairs) == 0 {
						continue
					}
					child := d.ev.Clone()
					added := 0
					for _, p := range pairs {
						if child.AddUnique(p.Attr, p.Val) {
							added++
						}
					}
					if added == 0 {
						continue
					}
					res.MappingPairs += added
					if admit(child) {
						next = append(next, derived{ev: child})
					}
				}
			}
		}
		if len(next) > 0 {
			res.Rounds++
		}
		frontier = next
	}
	return res
}

// rewriteEvent maps attributes (and optionally string values) to their
// synonym roots, returning the rewritten event and the rewrite count.
func (sn *stageSnap) rewriteEvent(e message.Event) (message.Event, int) {
	out := message.Event{}
	rewrites := 0
	for _, p := range e.Pairs() {
		attr, changed := sn.syn.Canonical(p.Attr)
		if changed {
			rewrites++
		}
		val := p.Val
		if sn.cfg.SynonymValues && val.Kind() == message.KindString {
			if s, ch := sn.syn.Canonical(val.Str()); ch {
				val = message.String(s)
				rewrites++
			}
		}
		out.Add(attr, val)
	}
	return out, rewrites
}

// generalize returns a copy of the event augmented with every
// generalized variant of its pairs: for each pair whose attribute is a
// known concept, pairs with ancestor attributes are added; for each
// string value that is a known concept, pairs with ancestor values are
// added. Rule R2 holds because nothing is ever specialized.
func (sn *stageSnap) generalize(e message.Event) (message.Event, int) {
	out := e.Clone()
	added := 0
	levels := sn.cfg.MaxGeneralization
	for _, p := range e.Pairs() {
		for _, anc := range sn.hier.Ancestors(p.Attr, levels) {
			if out.AddUnique(anc, p.Val) {
				added++
			}
		}
		if p.Val.Kind() == message.KindString {
			for _, anc := range sn.hier.Ancestors(p.Val.Str(), levels) {
				if out.AddUnique(p.Attr, message.String(anc)) {
					added++
				}
			}
		}
	}
	return out, added
}

// ProcessSubscription applies the subscription side of Figure 1: only
// the synonym stage runs, rewriting attributes (and optionally string
// values) to root terms. Hierarchy and mapping stages never touch
// subscriptions — generalizing a subscription would violate rule R2.
// The second result counts rewrites.
func (st *Stage) ProcessSubscription(s message.Subscription) (message.Subscription, int) {
	sn := st.load()
	if !sn.cfg.Synonyms {
		return s.Clone(), 0
	}
	out := s.Clone()
	rewrites := 0
	for i, p := range out.Preds {
		attr, changed := sn.syn.Canonical(p.Attr)
		if changed {
			rewrites++
			out.Preds[i].Attr = attr
		}
		if sn.cfg.SynonymValues && p.Val.Kind() == message.KindString {
			if v, ch := sn.syn.Canonical(p.Val.Str()); ch {
				rewrites++
				out.Preds[i].Val = message.String(v)
			}
		}
	}
	return out, rewrites
}

// String summarizes the stage for diagnostics.
func (st *Stage) String() string {
	sn := st.load()
	return fmt.Sprintf("stage{syn: %d terms, hier: %d concepts, maps: %d funcs, cfg: %+v}",
		sn.syn.Len(), sn.hier.Len(), sn.maps.Len(), sn.cfg)
}
