package semantic

import (
	"fmt"
	"sort"

	"stopss/internal/message"
)

// Hierarchy is the concept hierarchy of the paper's second approach
// (§3.1): a directed acyclic graph of specialization/generalization
// ("is-a") relations over terms. More general terms are higher up;
// edges point from child (specialized) to parent (generalized).
//
// The matching rules it supports are normative in the paper:
//
//	(R1) events that contain more specialized concepts match
//	     subscriptions that contain more generalized terms;
//	(R2) events that contain more generalized terms than those used in
//	     the subscriptions do NOT match.
//
// The Stage realizes R1 by adding generalized variants to events and R2
// by never specializing them.
type Hierarchy struct {
	parents  map[string][]string // child → parents (generalizations)
	children map[string][]string // parent → children (specializations)
	nodes    map[string]bool
}

// NewHierarchy returns an empty concept hierarchy.
func NewHierarchy() *Hierarchy {
	return &Hierarchy{
		parents:  make(map[string][]string),
		children: make(map[string][]string),
		nodes:    make(map[string]bool),
	}
}

// AddConcept registers a term without relating it to anything.
func (h *Hierarchy) AddConcept(term string) error {
	if term == "" {
		return fmt.Errorf("semantic: empty concept name")
	}
	h.nodes[term] = true
	message.InternSym(term) // concepts join the global intern table
	return nil
}

// AddIsA declares child to be a specialization of parent
// ("sedan is-a car"). Both concepts are registered implicitly. Edges
// that would create a cycle are rejected: a cyclic "hierarchy" would
// equate generalization and specialization and break rule R2.
func (h *Hierarchy) AddIsA(child, parent string) error {
	if child == "" || parent == "" {
		return fmt.Errorf("semantic: is-a needs non-empty concepts")
	}
	if child == parent {
		return fmt.Errorf("semantic: %q cannot specialize itself", child)
	}
	if h.reachable(parent, child) {
		return fmt.Errorf("semantic: is-a edge %q → %q would create a cycle", child, parent)
	}
	for _, p := range h.parents[child] {
		if p == parent {
			return nil // idempotent
		}
	}
	h.nodes[child] = true
	h.nodes[parent] = true
	message.InternSym(child)
	message.InternSym(parent)
	h.parents[child] = append(h.parents[child], parent)
	h.children[parent] = append(h.children[parent], child)
	return nil
}

// reachable reports whether to is reachable from from following parent
// edges (i.e. whether `to` generalizes `from` transitively or equals it).
func (h *Hierarchy) reachable(from, to string) bool {
	if from == to {
		return true
	}
	seen := map[string]bool{from: true}
	stack := []string{from}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range h.parents[n] {
			if p == to {
				return true
			}
			if !seen[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
	}
	return false
}

// Has reports whether the term is a known concept.
func (h *Hierarchy) Has(term string) bool { return h.nodes[term] }

// Len reports the number of known concepts.
func (h *Hierarchy) Len() int { return len(h.nodes) }

// Parents returns the direct generalizations of term, sorted.
func (h *Hierarchy) Parents(term string) []string {
	out := append([]string{}, h.parents[term]...)
	sort.Strings(out)
	return out
}

// Children returns the direct specializations of term, sorted.
func (h *Hierarchy) Children(term string) []string {
	out := append([]string{}, h.children[term]...)
	sort.Strings(out)
	return out
}

// Ancestors returns every transitive generalization of term (excluding
// term itself), sorted. maxLevels bounds how far up to walk; 0 means
// unlimited. This is the loss-tolerance knob of paper §3.2: "one may
// restrict the level of a match generality".
func (h *Hierarchy) Ancestors(term string, maxLevels int) []string {
	if !h.nodes[term] {
		return nil
	}
	seen := make(map[string]bool)
	frontier := []string{term}
	for level := 0; len(frontier) > 0 && (maxLevels == 0 || level < maxLevels); level++ {
		var next []string
		for _, n := range frontier {
			for _, p := range h.parents[n] {
				if !seen[p] && p != term {
					seen[p] = true
					next = append(next, p)
				}
			}
		}
		frontier = next
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Descendants returns every transitive specialization of term (excluding
// term itself), sorted.
func (h *Hierarchy) Descendants(term string) []string {
	if !h.nodes[term] {
		return nil
	}
	seen := make(map[string]bool)
	stack := []string{term}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range h.children[n] {
			if !seen[c] && c != term {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// IsA reports whether specific is term general or a transitive
// specialization of it ("sedan IsA vehicle").
func (h *Hierarchy) IsA(specific, general string) bool {
	if specific == general {
		return h.nodes[specific]
	}
	return h.reachable(specific, general)
}

// Depth returns the length of the longest parent chain above term
// (a root concept has depth 0), and false for unknown terms.
func (h *Hierarchy) Depth(term string) (int, bool) {
	if !h.nodes[term] {
		return 0, false
	}
	memo := make(map[string]int)
	var walk func(string) int
	walk = func(n string) int {
		if d, ok := memo[n]; ok {
			return d
		}
		best := 0
		for _, p := range h.parents[n] {
			if d := walk(p) + 1; d > best {
				best = d
			}
		}
		memo[n] = best
		return best
	}
	return walk(term), true
}

// Concepts returns every known concept, sorted (full enumeration for
// the ontology diff in internal/knowledge).
func (h *Hierarchy) Concepts() []string {
	out := make([]string, 0, len(h.nodes))
	for n := range h.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy sharing no mutable state with the original
// (copy-on-write support for the runtime knowledge base).
func (h *Hierarchy) Clone() *Hierarchy {
	c := &Hierarchy{
		parents:  make(map[string][]string, len(h.parents)),
		children: make(map[string][]string, len(h.children)),
		nodes:    make(map[string]bool, len(h.nodes)),
	}
	for n, ps := range h.parents {
		c.parents[n] = append([]string(nil), ps...)
	}
	for n, cs := range h.children {
		c.children[n] = append([]string(nil), cs...)
	}
	for n := range h.nodes {
		c.nodes[n] = true
	}
	return c
}

// Roots returns concepts with no parents, sorted.
func (h *Hierarchy) Roots() []string {
	var out []string
	for n := range h.nodes {
		if len(h.parents[n]) == 0 {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Merge copies every node and edge of o into h (multi-domain operation,
// paper §3.2). Cycles introduced by the union are rejected.
func (h *Hierarchy) Merge(o *Hierarchy) error {
	nodes := make([]string, 0, len(o.nodes))
	for n := range o.nodes {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		if err := h.AddConcept(n); err != nil {
			return err
		}
	}
	for _, child := range nodes {
		ps := append([]string{}, o.parents[child]...)
		sort.Strings(ps)
		for _, p := range ps {
			if err := h.AddIsA(child, p); err != nil {
				return err
			}
		}
	}
	return nil
}

// String summarizes the hierarchy for diagnostics.
func (h *Hierarchy) String() string {
	edges := 0
	for _, ps := range h.parents {
		edges += len(ps)
	}
	return fmt.Sprintf("hierarchy{concepts: %d, is-a edges: %d}", len(h.nodes), edges)
}
