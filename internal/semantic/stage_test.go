package semantic

import (
	"strings"
	"testing"

	"stopss/internal/message"
)

// jobStage builds the job-finder knowledge base used by the paper's
// running examples.
func jobStage(t *testing.T, cfg Config) *Stage {
	t.Helper()
	syn := NewSynonyms()
	if err := syn.AddGroup("university", "school", "college"); err != nil {
		t.Fatal(err)
	}
	if err := syn.AddGroup("professional experience", "work experience"); err != nil {
		t.Fatal(err)
	}

	h := NewHierarchy()
	mustIsA(t, h, "phd", "graduate degree")
	mustIsA(t, h, "msc", "graduate degree")
	mustIsA(t, h, "graduate degree", "degree")
	mustIsA(t, h, "bsc", "degree")

	m := NewMappings()
	if err := m.Add(experienceFunc(2003)); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(PairMap{
		MapName: "mainframe-to-cobol",
		Attr:    "position",
		Match:   message.String("mainframe developer"),
		Derived: []message.Pair{{Attr: "skill", Val: message.String("COBOL")}},
	}); err != nil {
		t.Fatal(err)
	}
	return NewStage(syn, h, m, cfg)
}

func TestStageSynonymRewrite(t *testing.T) {
	st := jobStage(t, Config{Synonyms: true})
	res := st.ProcessEvent(message.E("school", "Toronto", "work experience", 5))
	if len(res.Events) != 1 {
		t.Fatalf("Events = %d, want 1 (no CH/MF enabled)", len(res.Events))
	}
	root := res.Events[0]
	if !root.Has("university") || !root.Has("professional experience") {
		t.Errorf("root event not rewritten: %v", root)
	}
	if root.Has("school") || root.Has("work experience") {
		t.Errorf("original attribute names must be replaced, not duplicated: %v", root)
	}
	if res.SynonymRewrites != 2 {
		t.Errorf("SynonymRewrites = %d, want 2", res.SynonymRewrites)
	}
}

func TestStageSubscriptionRewrite(t *testing.T) {
	st := jobStage(t, Config{Synonyms: true})
	s := message.NewSubscription(1, "c",
		message.Pred("school", message.OpEq, message.String("Toronto")),
		message.Pred("degree", message.OpEq, message.String("PhD")))
	out, rewrites := st.ProcessSubscription(s)
	if rewrites != 1 {
		t.Errorf("rewrites = %d, want 1", rewrites)
	}
	if out.Preds[0].Attr != "university" {
		t.Errorf("subscription attribute not canonicalized: %v", out)
	}
	// Original untouched.
	if s.Preds[0].Attr != "school" {
		t.Error("ProcessSubscription must not mutate its input")
	}
	// Disabled stage: identity.
	st2 := jobStage(t, Config{})
	out2, r2 := st2.ProcessSubscription(s)
	if r2 != 0 || out2.Preds[0].Attr != "school" {
		t.Error("disabled stage must be the identity on subscriptions")
	}
}

func TestStageValueSynonyms(t *testing.T) {
	syn := NewSynonyms()
	if err := syn.AddGroup("car", "automobile"); err != nil {
		t.Fatal(err)
	}
	st := NewStage(syn, nil, nil, Config{Synonyms: true, SynonymValues: true})
	res := st.ProcessEvent(message.E("item", "automobile"))
	if v, _ := res.Events[0].Get("item"); v.Str() != "car" {
		t.Errorf("value synonym not applied: %v", res.Events[0])
	}
	// Off by default (paper-faithful attribute-level behaviour).
	st2 := NewStage(syn, nil, nil, Config{Synonyms: true})
	res2 := st2.ProcessEvent(message.E("item", "automobile"))
	if v, _ := res2.Events[0].Get("item"); v.Str() != "automobile" {
		t.Errorf("value synonyms must be off by default: %v", res2.Events[0])
	}
}

func TestStageHierarchyGeneralizesValues(t *testing.T) {
	st := jobStage(t, Config{Hierarchy: true})
	res := st.ProcessEvent(message.E("degree", "phd"))
	if len(res.Events) != 2 {
		t.Fatalf("Events = %d, want root + generalized", len(res.Events))
	}
	gen := res.Events[1]
	vals := gen.GetAll("degree")
	var got []string
	for _, v := range vals {
		got = append(got, v.Str())
	}
	joined := strings.Join(got, ",")
	if !strings.Contains(joined, "phd") || !strings.Contains(joined, "graduate degree") || !strings.Contains(joined, "degree") {
		t.Errorf("generalized event misses ancestors: %v", gen)
	}
	if res.HierarchyPairs != 2 {
		t.Errorf("HierarchyPairs = %d, want 2", res.HierarchyPairs)
	}
}

func TestStageHierarchyGeneralizesAttributes(t *testing.T) {
	h := NewHierarchy()
	mustIsA(t, h, "salary", "compensation")
	st := NewStage(nil, h, nil, Config{Hierarchy: true})
	res := st.ProcessEvent(message.E("salary", 90))
	if len(res.Events) != 2 {
		t.Fatalf("Events = %d, want 2", len(res.Events))
	}
	if v, ok := res.Events[1].Get("compensation"); !ok || v.IntVal() != 90 {
		t.Errorf("attribute generalization missing: %v", res.Events[1])
	}
}

func TestStageRuleR2NoSpecialization(t *testing.T) {
	// An event carrying the GENERAL term must not acquire specialized
	// variants: rule R2 of the paper.
	st := jobStage(t, Config{Hierarchy: true})
	res := st.ProcessEvent(message.E("degree", "degree"))
	for _, ev := range res.Events {
		for _, v := range ev.GetAll("degree") {
			if v.Str() == "phd" || v.Str() == "msc" || v.Str() == "bsc" {
				t.Fatalf("rule R2 violated: specialized value %q added to %v", v.Str(), ev)
			}
		}
	}
}

func TestStageGeneralizationLevelBound(t *testing.T) {
	st := jobStage(t, Config{Hierarchy: true, MaxGeneralization: 1})
	res := st.ProcessEvent(message.E("degree", "phd"))
	gen := res.Events[len(res.Events)-1]
	for _, v := range gen.GetAll("degree") {
		if v.Str() == "degree" {
			t.Fatalf("level bound 1 must stop at 'graduate degree', got %v", gen)
		}
	}
	found := false
	for _, v := range gen.GetAll("degree") {
		if v.Str() == "graduate degree" {
			found = true
		}
	}
	if !found {
		t.Fatalf("level-1 ancestor missing: %v", gen)
	}
}

func TestStageMappingDerivesEvent(t *testing.T) {
	st := jobStage(t, Config{Synonyms: true, Mappings: true})
	res := st.ProcessEvent(message.E("school", "Toronto", "graduation year", 1993))
	if len(res.Events) != 2 {
		t.Fatalf("Events = %d, want root + mapped", len(res.Events))
	}
	mapped := res.Events[1]
	if v, ok := mapped.Get("professional experience"); !ok || v.IntVal() != 10 {
		t.Errorf("mapping result missing: %v", mapped)
	}
	// The derived event keeps its parent's pairs (Figure 1: new events
	// still carry the original content).
	if !mapped.Has("university") {
		t.Errorf("derived event lost parent pairs: %v", mapped)
	}
	if res.MappingCalls == 0 || res.MappingPairs != 1 {
		t.Errorf("stats wrong: %+v", res)
	}
}

func TestStageFixpointMappingThenHierarchy(t *testing.T) {
	// A mapping function derives a value that the hierarchy then
	// generalizes — the CH↔MF interaction of §3.2.
	h := NewHierarchy()
	mustIsA(t, h, "cobol", "legacy language")
	m := NewMappings()
	if err := m.Add(PairMap{
		MapName: "mainframe-to-cobol",
		Attr:    "position",
		Match:   message.String("mainframe developer"),
		Derived: []message.Pair{{Attr: "skill", Val: message.String("cobol")}},
	}); err != nil {
		t.Fatal(err)
	}
	st := NewStage(nil, h, m, Config{Hierarchy: true, Mappings: true})
	res := st.ProcessEvent(message.E("position", "mainframe developer"))

	// Expect some event to carry skill = legacy language.
	found := false
	for _, ev := range res.Events {
		for _, v := range ev.GetAll("skill") {
			if v.Str() == "legacy language" {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("fixpoint did not generalize mapped value; events: %v", res.Events)
	}
	if res.Rounds < 2 {
		t.Errorf("Rounds = %d, want >= 2 (MF then CH)", res.Rounds)
	}
}

func TestStageFixpointHierarchyThenMapping(t *testing.T) {
	// The hierarchy generalizes a value for which a mapping function
	// exists — the reverse interaction.
	h := NewHierarchy()
	mustIsA(t, h, "sedan", "car")
	m := NewMappings()
	if err := m.Add(FuncOf{
		FName:     "car-insurance",
		FTriggers: []string{"item"},
		FApply: func(e message.Event) []message.Pair {
			for _, v := range e.GetAll("item") {
				if v.Kind() == message.KindString && v.Str() == "car" {
					return []message.Pair{{Attr: "needs", Val: message.String("insurance")}}
				}
			}
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	st := NewStage(nil, h, m, Config{Hierarchy: true, Mappings: true})
	res := st.ProcessEvent(message.E("item", "sedan"))
	found := false
	for _, ev := range res.Events {
		if ev.Has("needs") {
			found = true
		}
	}
	if !found {
		t.Fatalf("CH-derived value did not trigger mapping; events: %v", res.Events)
	}
}

func TestStageDeduplication(t *testing.T) {
	// Two mapping functions deriving identical pairs produce one event.
	m := NewMappings()
	for _, name := range []string{"f1", "f2"} {
		if err := m.Add(FuncOf{
			FName:     name,
			FTriggers: []string{"a"},
			FApply: func(message.Event) []message.Pair {
				return []message.Pair{{Attr: "b", Val: message.Int(1)}}
			},
		}); err != nil {
			t.Fatal(err)
		}
	}
	st := NewStage(nil, nil, m, Config{Mappings: true})
	res := st.ProcessEvent(message.E("a", 0))
	if len(res.Events) != 2 {
		t.Fatalf("Events = %d, want 2 (duplicate suppressed)", len(res.Events))
	}
	if res.Deduplicated == 0 {
		t.Error("Deduplicated counter should be positive")
	}
}

func TestStageCycleTermination(t *testing.T) {
	// Two mapping functions that keep deriving fresh pairs from each
	// other's output: the rounds/events budget must stop the loop.
	m := NewMappings()
	if err := m.Add(FuncOf{
		FName:     "ping",
		FTriggers: []string{"a"},
		FApply: func(e message.Event) []message.Pair {
			n := int64(e.Len())
			return []message.Pair{{Attr: "b", Val: message.Int(n)}}
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(FuncOf{
		FName:     "pong",
		FTriggers: []string{"b"},
		FApply: func(e message.Event) []message.Pair {
			n := int64(e.Len())
			return []message.Pair{{Attr: "a", Val: message.Int(n)}}
		},
	}); err != nil {
		t.Fatal(err)
	}
	st := NewStage(nil, nil, m, Config{Mappings: true, MaxRounds: 3, MaxEvents: 10})
	res := st.ProcessEvent(message.E("a", 0))
	if len(res.Events) > 10 {
		t.Fatalf("event budget exceeded: %d", len(res.Events))
	}
	if res.Rounds > 3 {
		t.Fatalf("round budget exceeded: %d", res.Rounds)
	}
}

func TestStageTruncationFlag(t *testing.T) {
	m := NewMappings()
	// A single function that derives a distinct pair per call count.
	calls := 0
	if err := m.Add(FuncOf{
		FName:     "fanout",
		FTriggers: []string{"a"},
		FApply: func(e message.Event) []message.Pair {
			calls++
			return []message.Pair{{Attr: "x", Val: message.Int(int64(calls))}}
		},
	}); err != nil {
		t.Fatal(err)
	}
	st := NewStage(nil, nil, m, Config{Mappings: true, MaxRounds: 50, MaxEvents: 3})
	res := st.ProcessEvent(message.E("a", 0))
	if !res.Truncated {
		t.Error("Truncated flag should be set when MaxEvents is hit")
	}
	if len(res.Events) != 3 {
		t.Errorf("Events = %d, want exactly MaxEvents", len(res.Events))
	}
}

func TestStageSyntacticModeIsIdentity(t *testing.T) {
	st := jobStage(t, SyntacticConfig())
	e := message.E("school", "Toronto", "graduation year", 1993)
	res := st.ProcessEvent(e)
	if len(res.Events) != 1 || !res.Events[0].Equal(e) {
		t.Errorf("syntactic mode must pass the event through untouched: %+v", res)
	}
	if res.SynonymRewrites+res.HierarchyPairs+res.MappingPairs != 0 {
		t.Errorf("syntactic mode must do no semantic work: %+v", res)
	}
}

func TestStageNilComponentsSafe(t *testing.T) {
	st := NewStage(nil, nil, nil, FullConfig())
	res := st.ProcessEvent(message.E("a", 1))
	if len(res.Events) != 1 {
		t.Errorf("empty knowledge base should yield the root event only: %+v", res)
	}
	if st.Synonyms() == nil || st.Hierarchy() == nil || st.Mappings() == nil {
		t.Error("accessors must never return nil")
	}
}

func TestStageInputNotMutated(t *testing.T) {
	st := jobStage(t, FullConfig())
	e := message.E("school", "Toronto", "graduation year", 1993)
	before := e.Signature()
	_ = st.ProcessEvent(e)
	if e.Signature() != before {
		t.Error("ProcessEvent must not mutate its input")
	}
}

func TestStageSetConfig(t *testing.T) {
	st := jobStage(t, SyntacticConfig())
	st.SetConfig(FullConfig())
	if !st.Config().Synonyms {
		t.Error("SetConfig did not take effect")
	}
	res := st.ProcessEvent(message.E("school", "Toronto"))
	if !res.Events[0].Has("university") {
		t.Error("stage did not switch to semantic mode")
	}
}

func TestStageStringSummary(t *testing.T) {
	st := jobStage(t, FullConfig())
	if s := st.String(); !strings.Contains(s, "funcs") {
		t.Errorf("String() = %q", s)
	}
}
