package semantic

import (
	"fmt"
	"sort"

	"stopss/internal/message"
)

// MappingFunc is the paper's third approach (§3.1): a many-to-many
// function correlating one or more attribute/value pairs of an event to
// one or more semantically related attribute/value pairs. Mapping
// functions are supplied by domain experts; the ontology compiler
// (internal/ontology) builds them from declarative rules, and Go code
// can implement the interface directly for arbitrary relationships.
type MappingFunc interface {
	// Name identifies the function in diagnostics and stats.
	Name() string
	// Triggers lists the attributes whose presence in an event makes
	// the function applicable. The registry hashes on these, so a
	// publication only ever sees the functions that can fire for it
	// (the paper's hash-structure performance requirement).
	Triggers() []string
	// Apply inspects the event and returns derived pairs, or nil when
	// the function does not apply. Implementations must not mutate e.
	Apply(e message.Event) []message.Pair
}

// Mappings is the registry of mapping functions, hashed by trigger
// attribute. Multiple functions may share a trigger ("It is possible to
// have many mapping functions for each attribute").
type Mappings struct {
	byTrigger map[string][]MappingFunc
	names     map[string]MappingFunc
	count     int
}

// NewMappings returns an empty registry.
func NewMappings() *Mappings {
	return &Mappings{
		byTrigger: make(map[string][]MappingFunc),
		names:     make(map[string]MappingFunc),
	}
}

// Add registers a mapping function under every one of its triggers.
// Functions must have unique, non-empty names and at least one trigger.
func (m *Mappings) Add(f MappingFunc) error {
	if f.Name() == "" {
		return fmt.Errorf("semantic: mapping function needs a name")
	}
	if _, dup := m.names[f.Name()]; dup {
		return fmt.Errorf("semantic: mapping function %q already registered", f.Name())
	}
	trigs := f.Triggers()
	if len(trigs) == 0 {
		return fmt.Errorf("semantic: mapping function %q has no trigger attributes", f.Name())
	}
	for _, t := range trigs {
		if t == "" {
			return fmt.Errorf("semantic: mapping function %q has an empty trigger", f.Name())
		}
	}
	m.names[f.Name()] = f
	m.count++
	seen := make(map[string]bool, len(trigs))
	for _, t := range trigs {
		if seen[t] {
			continue
		}
		seen[t] = true
		m.byTrigger[t] = append(m.byTrigger[t], f)
	}
	return nil
}

// Len reports the number of registered functions.
func (m *Mappings) Len() int { return m.count }

// Func returns the registered function with the given name.
func (m *Mappings) Func(name string) (MappingFunc, bool) {
	f, ok := m.names[name]
	return f, ok
}

// Has reports whether a function with the given name is registered.
func (m *Mappings) Has(name string) bool {
	_, ok := m.names[name]
	return ok
}

// Remove unregisters a function by name (the Retire operation of the
// runtime knowledge base), reporting whether it existed.
func (m *Mappings) Remove(name string) bool {
	if _, ok := m.names[name]; !ok {
		return false
	}
	delete(m.names, name)
	m.count--
	for trig, fns := range m.byTrigger {
		kept := fns[:0]
		for _, f := range fns {
			if f.Name() != name {
				kept = append(kept, f)
			}
		}
		if len(kept) == 0 {
			delete(m.byTrigger, trig)
		} else {
			m.byTrigger[trig] = kept
		}
	}
	return true
}

// Clone returns a copy sharing no mutable registry state with the
// original (the MappingFunc values themselves, being immutable by
// contract, are shared). Copy-on-write support for the runtime
// knowledge base.
func (m *Mappings) Clone() *Mappings {
	c := &Mappings{
		byTrigger: make(map[string][]MappingFunc, len(m.byTrigger)),
		names:     make(map[string]MappingFunc, len(m.names)),
		count:     m.count,
	}
	for t, fns := range m.byTrigger {
		c.byTrigger[t] = append([]MappingFunc(nil), fns...)
	}
	for n, f := range m.names {
		c.names[n] = f
	}
	return c
}

// Applicable returns the functions triggered by any attribute of the
// event, each at most once, in registration order per trigger. Lookup is
// one hash probe per distinct event attribute.
func (m *Mappings) Applicable(e message.Event) []MappingFunc {
	if m.count == 0 {
		return nil
	}
	var out []MappingFunc
	seen := make(map[string]bool)
	seenAttr := make(map[string]bool, e.Len())
	for _, pair := range e.Pairs() {
		if seenAttr[pair.Attr] {
			continue
		}
		seenAttr[pair.Attr] = true
		for _, f := range m.byTrigger[pair.Attr] {
			if !seen[f.Name()] {
				seen[f.Name()] = true
				out = append(out, f)
			}
		}
	}
	return out
}

// Names returns the registered function names, sorted.
func (m *Mappings) Names() []string {
	out := make([]string, 0, len(m.names))
	for n := range m.names {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Merge copies every function of o into m (multi-domain operation and
// inter-domain bridging, paper §3.2: "it is possible to provide
// inter-domain mapping by simply adding additional functions").
func (m *Mappings) Merge(o *Mappings) error {
	// Collect distinct functions of o in deterministic order.
	var fns []MappingFunc
	seen := make(map[string]bool)
	trigs := make([]string, 0, len(o.byTrigger))
	for t := range o.byTrigger {
		trigs = append(trigs, t)
	}
	sort.Strings(trigs)
	for _, t := range trigs {
		for _, f := range o.byTrigger[t] {
			if !seen[f.Name()] {
				seen[f.Name()] = true
				fns = append(fns, f)
			}
		}
	}
	for _, f := range fns {
		if err := m.Add(f); err != nil {
			return err
		}
	}
	return nil
}

// FuncOf builds a MappingFunc from a closure; the common case for
// programmatic registration.
type FuncOf struct {
	FName     string
	FTriggers []string
	FApply    func(message.Event) []message.Pair
}

// Name implements MappingFunc.
func (f FuncOf) Name() string { return f.FName }

// Triggers implements MappingFunc.
func (f FuncOf) Triggers() []string { return f.FTriggers }

// Apply implements MappingFunc.
func (f FuncOf) Apply(e message.Event) []message.Pair { return f.FApply(e) }

// PairMap is a declarative mapping function relating a single
// attribute/value pair to a set of derived pairs, e.g.
//
//	(position, "mainframe developer") → (skill, "COBOL")(era, "1960-1980")
//
// It is the building block the ontology compiler emits for `map` rules.
type PairMap struct {
	MapName string
	Attr    string
	Match   message.Value // pair value that triggers the mapping
	Derived []message.Pair
}

// Name implements MappingFunc.
func (p PairMap) Name() string { return p.MapName }

// Triggers implements MappingFunc.
func (p PairMap) Triggers() []string { return []string{p.Attr} }

// Apply implements MappingFunc.
func (p PairMap) Apply(e message.Event) []message.Pair {
	for _, pair := range e.Pairs() {
		if pair.Attr == p.Attr && pair.Val.Equal(p.Match) {
			out := make([]message.Pair, len(p.Derived))
			copy(out, p.Derived)
			return out
		}
	}
	return nil
}
