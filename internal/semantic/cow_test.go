package semantic

import (
	"sync"
	"testing"

	"stopss/internal/message"
)

// TestSetConfigConcurrentWithProcessEvent is the regression test for the
// latent race the sharded engine exposed: the stage is shared by all
// shards, and config writes used to be plain field assignments. Run with
// -race.
func TestSetConfigConcurrentWithProcessEvent(t *testing.T) {
	syn := NewSynonyms()
	if err := syn.AddGroup("position", "job"); err != nil {
		t.Fatal(err)
	}
	hier := NewHierarchy()
	if err := hier.AddIsA("sedan", "car"); err != nil {
		t.Fatal(err)
	}
	st := NewStage(syn, hier, nil, FullConfig())

	ev := message.E("job", "dev", "sedan", "x")
	sub := message.NewSubscription(1, "c", message.Pred("job", message.OpEq, message.String("dev")))

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res := st.ProcessEvent(ev)
				if len(res.Events) == 0 {
					t.Error("ProcessEvent returned no events")
					return
				}
				st.ProcessSubscription(sub)
				_ = st.Config()
			}
		}()
	}
	for i := 0; i < 200; i++ {
		cfg := FullConfig()
		if i%2 == 0 {
			cfg = Config{Synonyms: true}
		}
		cfg.MaxGeneralization = i % 3
		st.SetConfig(cfg)
	}
	close(stop)
	wg.Wait()
}

// TestProcessEventSeesOneSnapshot: a ProcessEvent that begins before a
// Replace either sees the whole old knowledge or the whole new one —
// never a mix. With synonyms and hierarchy replaced together, a torn
// read would rewrite with the new synonyms but generalize with the old
// hierarchy (or vice versa).
func TestProcessEventSeesOneSnapshot(t *testing.T) {
	st := NewStage(nil, nil, nil, FullConfig())

	// New knowledge: "job" → "position" and position is-a role.
	syn := NewSynonyms()
	if err := syn.AddGroup("position", "job"); err != nil {
		t.Fatal(err)
	}
	hier := NewHierarchy()
	if err := hier.AddIsA("position", "role"); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		ev := message.E("job", "dev")
		for {
			select {
			case <-stop:
				return
			default:
			}
			res := st.ProcessEvent(ev)
			root := res.Events[0]
			rewritten := root.Has("position")
			generalized := false
			for _, dev := range res.Events {
				if dev.Has("role") {
					generalized = true
				}
			}
			// Old snapshot: neither. New snapshot: both (position is a
			// known concept, so the derived set contains a role pair).
			if rewritten != generalized {
				t.Errorf("torn snapshot: rewritten=%v generalized=%v", rewritten, generalized)
				return
			}
		}
	}()
	st.Replace(syn, hier, nil)
	close(stop)
	wg.Wait()

	res := st.ProcessEvent(message.E("job", "dev"))
	if !res.Events[0].Has("position") {
		t.Fatalf("after Replace, event not rewritten: %v", res.Events[0])
	}
}

func TestCloneIndependence(t *testing.T) {
	syn := NewSynonyms()
	if err := syn.AddGroup("position", "job"); err != nil {
		t.Fatal(err)
	}
	c := syn.Clone()
	if err := c.AddGroup("salary", "pay"); err != nil {
		t.Fatal(err)
	}
	if syn.Known("pay") {
		t.Fatal("clone mutation leaked into original synonyms")
	}
	if got, _ := c.Canonical("job"); got != "position" {
		t.Fatalf("clone lost existing group: job → %q", got)
	}

	h := NewHierarchy()
	if err := h.AddIsA("sedan", "car"); err != nil {
		t.Fatal(err)
	}
	hc := h.Clone()
	if err := hc.AddIsA("car", "vehicle"); err != nil {
		t.Fatal(err)
	}
	if h.Has("vehicle") {
		t.Fatal("clone mutation leaked into original hierarchy")
	}
	if !hc.IsA("sedan", "vehicle") {
		t.Fatal("clone lost transitive reachability")
	}

	m := NewMappings()
	pm := PairMap{MapName: "pm1", Attr: "a", Match: message.String("x"),
		Derived: []message.Pair{{Attr: "b", Val: message.String("y")}}}
	if err := m.Add(pm); err != nil {
		t.Fatal(err)
	}
	mc := m.Clone()
	if !mc.Remove("pm1") {
		t.Fatal("Remove on clone failed")
	}
	if !m.Has("pm1") {
		t.Fatal("Remove on clone leaked into original")
	}
	if mc.Has("pm1") || mc.Len() != 0 {
		t.Fatal("clone still has removed function")
	}
	if fns := mc.Applicable(message.E("a", "x")); len(fns) != 0 {
		t.Fatalf("removed function still applicable: %v", fns)
	}
}

func TestMappingsRemoveSharedTrigger(t *testing.T) {
	m := NewMappings()
	mk := func(name string) PairMap {
		return PairMap{MapName: name, Attr: "a", Match: message.String("x"),
			Derived: []message.Pair{{Attr: "b", Val: message.String(name)}}}
	}
	if err := m.Add(mk("one")); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(mk("two")); err != nil {
		t.Fatal(err)
	}
	if !m.Remove("one") {
		t.Fatal("Remove(one) failed")
	}
	if m.Remove("one") {
		t.Fatal("second Remove(one) succeeded")
	}
	fns := m.Applicable(message.E("a", "x"))
	if len(fns) != 1 || fns[0].Name() != "two" {
		t.Fatalf("Applicable after remove = %v, want [two]", fns)
	}
	if _, ok := m.Func("two"); !ok {
		t.Fatal("Func(two) missing")
	}
}
