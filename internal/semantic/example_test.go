package semantic_test

import (
	"fmt"

	"stopss/internal/message"
	"stopss/internal/semantic"
)

// ExampleSynonyms shows the first approach of the paper: rewriting
// semantically equivalent attribute names to a root term.
func ExampleSynonyms() {
	syn := semantic.NewSynonyms()
	_ = syn.AddGroup("university", "school", "college")

	root, rewritten := syn.Canonical("school")
	fmt.Println(root, rewritten)
	root, rewritten = syn.Canonical("university")
	fmt.Println(root, rewritten)
	// Output:
	// university true
	// university false
}

// ExampleHierarchy shows rule R1/R2 directionality: specialization
// chains can be walked upward (generalization) but IsA is directional.
func ExampleHierarchy() {
	h := semantic.NewHierarchy()
	_ = h.AddIsA("sedan", "car")
	_ = h.AddIsA("car", "vehicle")

	fmt.Println(h.Ancestors("sedan", 0))
	fmt.Println(h.IsA("sedan", "vehicle"), h.IsA("vehicle", "sedan"))
	// Output:
	// [car vehicle]
	// true false
}

// ExampleStage runs the whole Figure 1 pipeline on the paper's §3.1
// mapping-function example.
func ExampleStage() {
	syn := semantic.NewSynonyms()
	_ = syn.AddGroup("university", "school")

	maps := semantic.NewMappings()
	_ = maps.Add(semantic.FuncOf{
		FName:     "experience-from-graduation",
		FTriggers: []string{"graduation year"},
		FApply: func(e message.Event) []message.Pair {
			v, ok := e.Get("graduation year")
			if !ok {
				return nil
			}
			y, _ := v.AsFloat()
			return []message.Pair{{Attr: "professional experience", Val: message.Int(2003 - int64(y))}}
		},
	})

	stage := semantic.NewStage(syn, nil, maps, semantic.FullConfig())
	res := stage.ProcessEvent(message.E("school", "Toronto", "graduation year", 1993))
	for _, ev := range res.Events {
		fmt.Println(ev)
	}
	// Output:
	// (university, Toronto)(graduation year, 1993)
	// (university, Toronto)(graduation year, 1993)(professional experience, 10)
}

// ExamplePairMap shows the paper's §1 mainframe-developer inference.
func ExamplePairMap() {
	pm := semantic.PairMap{
		MapName: "mainframe-to-cobol",
		Attr:    "position",
		Match:   message.String("mainframe developer"),
		Derived: []message.Pair{
			{Attr: "skill", Val: message.String("COBOL")},
			{Attr: "era", Val: message.String("1960-1980")},
		},
	}
	for _, p := range pm.Apply(message.E("position", "mainframe developer")) {
		fmt.Printf("(%s, %s)\n", p.Attr, p.Val)
	}
	// Output:
	// (skill, COBOL)
	// (era, 1960-1980)
}
