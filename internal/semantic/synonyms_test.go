package semantic

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func TestSynonymsBasic(t *testing.T) {
	s := NewSynonyms()
	if err := s.AddGroup("university", "school", "college"); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		in      string
		want    string
		rewrote bool
	}{
		{"school", "university", true},
		{"college", "university", true},
		{"university", "university", false},
		{"hospital", "hospital", false},
	}
	for _, tc := range cases {
		got, rewrote := s.Canonical(tc.in)
		if got != tc.want || rewrote != tc.rewrote {
			t.Errorf("Canonical(%q) = (%q, %v), want (%q, %v)", tc.in, got, rewrote, tc.want, tc.rewrote)
		}
	}
	if !s.IsRoot("university") || s.IsRoot("school") || s.IsRoot("hospital") {
		t.Error("IsRoot misreports")
	}
	if s.Len() != 3 || s.Groups() != 1 {
		t.Errorf("Len=%d Groups=%d, want 3/1", s.Len(), s.Groups())
	}
}

func TestSynonymsGroupOf(t *testing.T) {
	s := NewSynonyms()
	if err := s.AddGroup("university", "school", "college"); err != nil {
		t.Fatal(err)
	}
	got := s.GroupOf("college")
	want := []string{"university", "college", "school"}
	if len(got) != len(want) {
		t.Fatalf("GroupOf = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("GroupOf = %v, want %v", got, want)
		}
	}
	if s.GroupOf("nothing") != nil {
		t.Error("unknown term should have nil group")
	}
}

func TestSynonymsConflicts(t *testing.T) {
	s := NewSynonyms()
	if err := s.AddGroup("university", "school"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddGroup("academy", "school"); err == nil {
		t.Error("remapping a term to a different root must fail")
	}
	if err := s.AddGroup("school", "kindergarten"); err == nil {
		t.Error("a synonym must not become a root")
	}
	if err := s.AddGroup("", "x"); err == nil {
		t.Error("empty root must fail")
	}
	if err := s.AddGroup("r", ""); err == nil {
		t.Error("empty synonym must fail")
	}
	// Re-adding the same mapping is idempotent.
	if err := s.AddGroup("university", "school", "college"); err != nil {
		t.Errorf("idempotent re-add should succeed: %v", err)
	}
	// Root listed among its own synonyms is tolerated.
	if err := s.AddGroup("vehicle", "vehicle", "auto"); err != nil {
		t.Errorf("root within synonyms should be tolerated: %v", err)
	}
	if got, _ := s.Canonical("auto"); got != "vehicle" {
		t.Errorf("auto should root to vehicle, got %q", got)
	}
}

func TestSynonymsMerge(t *testing.T) {
	a := NewSynonyms()
	if err := a.AddGroup("university", "school"); err != nil {
		t.Fatal(err)
	}
	b := NewSynonyms()
	if err := b.AddGroup("car", "automobile", "auto"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddGroup("lonely"); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got, _ := a.Canonical("automobile"); got != "car" {
		t.Errorf("merged table should canonicalize automobile → car, got %q", got)
	}
	if !a.IsRoot("lonely") {
		t.Error("memberless roots must survive a merge")
	}
	// Conflicting merge fails.
	c := NewSynonyms()
	if err := c.AddGroup("vehicle", "auto"); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(c); err == nil {
		t.Error("conflicting merge must fail")
	}
}

func TestQuickSynonymsIdempotent(t *testing.T) {
	// Canonical(Canonical(x)) == Canonical(x) for random tables.
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		s := NewSynonyms()
		terms := make([]string, 0, 40)
		for g := 0; g < 8; g++ {
			root := fmt.Sprintf("root%d_%d", trial, g)
			var syns []string
			for k := 0; k < 1+r.Intn(4); k++ {
				syn := fmt.Sprintf("syn%d_%d_%d", trial, g, k)
				syns = append(syns, syn)
				terms = append(terms, syn)
			}
			terms = append(terms, root)
			if err := s.AddGroup(root, syns...); err != nil {
				t.Fatal(err)
			}
		}
		terms = append(terms, "unknown-term")
		for _, term := range terms {
			once, _ := s.Canonical(term)
			twice, rewrote := s.Canonical(once)
			if once != twice {
				t.Fatalf("not idempotent: %q → %q → %q", term, once, twice)
			}
			if rewrote {
				t.Fatalf("canonical form %q reported a rewrite", once)
			}
		}
	}
}

func TestLinearSynonymsAgreesWithHash(t *testing.T) {
	h := NewSynonyms()
	l := NewLinearSynonyms()
	groups := [][]string{
		{"university", "school", "college"},
		{"car", "automobile"},
		{"degree", "diploma", "qualification"},
	}
	for _, g := range groups {
		if err := h.AddGroup(g[0], g[1:]...); err != nil {
			t.Fatal(err)
		}
		l.AddGroup(g[0], g[1:]...)
	}
	for _, term := range []string{"school", "college", "university", "automobile", "diploma", "unknown"} {
		hr, hc := h.Canonical(term)
		lr, lc := l.Canonical(term)
		if hr != lr || hc != lc {
			t.Errorf("hash and linear tables disagree on %q: (%q,%v) vs (%q,%v)", term, hr, hc, lr, lc)
		}
	}
}

func TestNormalizeTerm(t *testing.T) {
	cases := map[string]string{
		"Graduation Year":             "graduation year",
		"  professional  experience ": "professional experience",
		"PhD":                         "phd",
		"a":                           "a",
	}
	for in, want := range cases {
		if got := NormalizeTerm(in); got != want {
			t.Errorf("NormalizeTerm(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSynonymsString(t *testing.T) {
	s := NewSynonyms()
	_ = s.AddGroup("a", "b")
	if !strings.Contains(s.String(), "terms: 2") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestDiffTerms(t *testing.T) {
	old := NewSynonyms()
	if err := old.AddGroup("position", "job"); err != nil {
		t.Fatal(err)
	}
	if err := old.AddGroup("lonely"); err != nil { // memberless root
		t.Fatal(err)
	}
	neu := old.Clone()
	if err := neu.AddGroup("position", "post"); err != nil { // new member
		t.Fatal(err)
	}
	if err := neu.AddGroup("salary", "pay"); err != nil { // new group
		t.Fatal(err)
	}

	got := old.DiffTerms(neu)
	// "post" and "pay" acquired roots; "salary" is a NEW root but its
	// canonical form is itself on both sides, like "lonely" and
	// "position" — roots never diff.
	want := []string{"pay", "post"}
	if len(got) != len(want) {
		t.Fatalf("DiffTerms = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DiffTerms = %v, want %v", got, want)
		}
	}
	// Symmetric, and empty on identical tables.
	if rev := neu.DiffTerms(old); len(rev) != len(want) {
		t.Fatalf("reverse DiffTerms = %v", rev)
	}
	if same := neu.DiffTerms(neu.Clone()); len(same) != 0 {
		t.Fatalf("self DiffTerms = %v", same)
	}
}
