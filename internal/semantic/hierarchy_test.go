package semantic

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// vehicles builds the taxonomy used across the tests:
//
//	vehicle
//	├── car
//	│   ├── sedan
//	│   └── suv
//	└── truck
//	    └── pickup
func vehicles(t *testing.T) *Hierarchy {
	t.Helper()
	h := NewHierarchy()
	for child, parent := range map[string]string{
		"car":    "vehicle",
		"truck":  "vehicle",
		"sedan":  "car",
		"suv":    "car",
		"pickup": "truck",
	} {
		if err := h.AddIsA(child, parent); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func TestHierarchyBasics(t *testing.T) {
	h := vehicles(t)
	if h.Len() != 6 {
		t.Errorf("Len = %d, want 6", h.Len())
	}
	if !h.Has("sedan") || h.Has("boat") {
		t.Error("Has misreports")
	}
	if got := h.Parents("sedan"); !reflect.DeepEqual(got, []string{"car"}) {
		t.Errorf("Parents(sedan) = %v", got)
	}
	if got := h.Children("car"); !reflect.DeepEqual(got, []string{"sedan", "suv"}) {
		t.Errorf("Children(car) = %v", got)
	}
	if got := h.Roots(); !reflect.DeepEqual(got, []string{"vehicle"}) {
		t.Errorf("Roots = %v", got)
	}
}

func TestHierarchyAncestors(t *testing.T) {
	h := vehicles(t)
	if got := h.Ancestors("sedan", 0); !reflect.DeepEqual(got, []string{"car", "vehicle"}) {
		t.Errorf("Ancestors(sedan, ∞) = %v", got)
	}
	if got := h.Ancestors("sedan", 1); !reflect.DeepEqual(got, []string{"car"}) {
		t.Errorf("Ancestors(sedan, 1) = %v (loss-tolerance bound violated)", got)
	}
	if got := h.Ancestors("vehicle", 0); len(got) != 0 {
		t.Errorf("Ancestors(vehicle) = %v, want none", got)
	}
	if got := h.Ancestors("boat", 0); got != nil {
		t.Errorf("Ancestors of unknown term = %v, want nil", got)
	}
}

func TestHierarchyDescendants(t *testing.T) {
	h := vehicles(t)
	if got := h.Descendants("vehicle"); !reflect.DeepEqual(got, []string{"car", "pickup", "sedan", "suv", "truck"}) {
		t.Errorf("Descendants(vehicle) = %v", got)
	}
	if got := h.Descendants("sedan"); len(got) != 0 {
		t.Errorf("Descendants(sedan) = %v, want none", got)
	}
}

func TestHierarchyIsA(t *testing.T) {
	h := vehicles(t)
	if !h.IsA("sedan", "vehicle") || !h.IsA("sedan", "car") || !h.IsA("car", "car") {
		t.Error("IsA should hold transitively and reflexively")
	}
	if h.IsA("vehicle", "sedan") {
		t.Error("IsA must be directional (rule R2)")
	}
	if h.IsA("boat", "boat") {
		t.Error("unknown terms are not IsA anything")
	}
}

func TestHierarchyDepth(t *testing.T) {
	h := vehicles(t)
	for term, want := range map[string]int{"vehicle": 0, "car": 1, "sedan": 2, "pickup": 2} {
		if d, ok := h.Depth(term); !ok || d != want {
			t.Errorf("Depth(%s) = (%d,%v), want %d", term, d, ok, want)
		}
	}
	if _, ok := h.Depth("boat"); ok {
		t.Error("Depth of unknown term should report false")
	}
}

func TestHierarchyCycleRejection(t *testing.T) {
	h := vehicles(t)
	if err := h.AddIsA("vehicle", "sedan"); err == nil {
		t.Error("cycle-creating edge must be rejected")
	}
	if err := h.AddIsA("x", "x"); err == nil {
		t.Error("self loop must be rejected")
	}
	if err := h.AddIsA("", "y"); err == nil {
		t.Error("empty concept must be rejected")
	}
	// Idempotent edge.
	if err := h.AddIsA("sedan", "car"); err != nil {
		t.Errorf("re-adding an edge should be a no-op: %v", err)
	}
	if got := h.Parents("sedan"); len(got) != 1 {
		t.Errorf("duplicate edge stored: %v", got)
	}
}

func TestHierarchyDAGMultipleParents(t *testing.T) {
	h := NewHierarchy()
	// amphibious-vehicle is-a car AND is-a boat.
	mustIsA(t, h, "car", "vehicle")
	mustIsA(t, h, "boat", "vehicle")
	mustIsA(t, h, "amphibious", "car")
	mustIsA(t, h, "amphibious", "boat")
	got := h.Ancestors("amphibious", 0)
	want := []string{"boat", "car", "vehicle"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Ancestors = %v, want %v", got, want)
	}
	// Level bound across a diamond: one level up gives both parents.
	if got := h.Ancestors("amphibious", 1); !reflect.DeepEqual(got, []string{"boat", "car"}) {
		t.Errorf("Ancestors level 1 = %v", got)
	}
}

func mustIsA(t *testing.T, h *Hierarchy, child, parent string) {
	t.Helper()
	if err := h.AddIsA(child, parent); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyMerge(t *testing.T) {
	a := vehicles(t)
	b := NewHierarchy()
	mustIsA(t, b, "phd", "degree")
	mustIsA(t, b, "msc", "degree")
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if !a.IsA("phd", "degree") || !a.IsA("sedan", "vehicle") {
		t.Error("merge lost edges")
	}
	// A merge that would create a cycle fails.
	c := NewHierarchy()
	mustIsA(t, c, "vehicle", "sedan")
	if err := a.Merge(c); err == nil {
		t.Error("cycle-creating merge must fail")
	}
}

// TestQuickAncestorDescendantDuality: y ∈ Ancestors(x) ⇔ x ∈ Descendants(y)
// on random DAGs.
func TestQuickAncestorDescendantDuality(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		h := NewHierarchy()
		n := 5 + r.Intn(20)
		names := make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("c%d", i)
			_ = h.AddConcept(names[i])
		}
		// Random edges child→parent with child index > parent index keep
		// it acyclic by construction; AddIsA must accept all of them.
		for i := 1; i < n; i++ {
			for k := 0; k < 1+r.Intn(2); k++ {
				p := r.Intn(i)
				if err := h.AddIsA(names[i], names[p]); err != nil {
					t.Fatalf("unexpected rejection: %v", err)
				}
			}
		}
		for _, x := range names {
			for _, y := range h.Ancestors(x, 0) {
				found := false
				for _, d := range h.Descendants(y) {
					if d == x {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("duality violated: %s ancestor of %s but not dual", y, x)
				}
				if !h.IsA(x, y) {
					t.Fatalf("IsA(%s,%s) false despite ancestry", x, y)
				}
				if h.IsA(y, x) {
					t.Fatalf("IsA symmetric on %s,%s: DAG has a cycle", x, y)
				}
			}
		}
	}
}

// TestQuickAncestorsLevelMonotone: the ancestor set grows monotonically
// with the level bound and converges to the unbounded set.
func TestQuickAncestorsLevelMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	h := NewHierarchy()
	for i := 1; i < 40; i++ {
		_ = h.AddIsA(fmt.Sprintf("c%d", i), fmt.Sprintf("c%d", r.Intn(i)))
	}
	full := h.Ancestors("c39", 0)
	prev := 0
	for level := 1; level <= 40; level++ {
		got := h.Ancestors("c39", level)
		if len(got) < prev {
			t.Fatalf("ancestor set shrank at level %d", level)
		}
		prev = len(got)
	}
	if prev != len(full) {
		t.Fatalf("bounded walk did not converge: %d vs %d", prev, len(full))
	}
}
