package semantic

import (
	"reflect"
	"testing"

	"stopss/internal/message"
)

// experienceFunc is the paper's §3.1 example:
// professional experience = present date − graduation year.
func experienceFunc(presentYear int64) MappingFunc {
	return FuncOf{
		FName:     "experience-from-graduation",
		FTriggers: []string{"graduation year"},
		FApply: func(e message.Event) []message.Pair {
			v, ok := e.Get("graduation year")
			if !ok {
				return nil
			}
			year, ok := v.AsFloat()
			if !ok {
				return nil
			}
			return []message.Pair{{Attr: "professional experience", Val: message.Int(presentYear - int64(year))}}
		},
	}
}

func TestMappingsRegistry(t *testing.T) {
	m := NewMappings()
	if err := m.Add(experienceFunc(2003)); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 {
		t.Errorf("Len = %d, want 1", m.Len())
	}
	if err := m.Add(experienceFunc(2003)); err == nil {
		t.Error("duplicate name must be rejected")
	}
	if err := m.Add(FuncOf{FName: "", FTriggers: []string{"a"}}); err == nil {
		t.Error("empty name must be rejected")
	}
	if err := m.Add(FuncOf{FName: "x", FTriggers: nil}); err == nil {
		t.Error("no triggers must be rejected")
	}
	if err := m.Add(FuncOf{FName: "y", FTriggers: []string{""}}); err == nil {
		t.Error("empty trigger must be rejected")
	}
	if got := m.Names(); !reflect.DeepEqual(got, []string{"experience-from-graduation"}) {
		t.Errorf("Names = %v", got)
	}
}

func TestMappingsApplicable(t *testing.T) {
	m := NewMappings()
	if err := m.Add(experienceFunc(2003)); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(FuncOf{
		FName:     "salary-band",
		FTriggers: []string{"salary"},
		FApply:    func(message.Event) []message.Pair { return nil },
	}); err != nil {
		t.Fatal(err)
	}

	e := message.E("graduation year", 1993, "school", "Toronto")
	fns := m.Applicable(e)
	if len(fns) != 1 || fns[0].Name() != "experience-from-graduation" {
		t.Errorf("Applicable = %v", names(fns))
	}
	// No trigger present → no functions (hash probe misses).
	if fns := m.Applicable(message.E("x", 1)); len(fns) != 0 {
		t.Errorf("unexpected applicable functions: %v", names(fns))
	}
	// Duplicate trigger attribute in the event yields the function once.
	dup := message.E("graduation year", 1990, "graduation year", 1993)
	if fns := m.Applicable(dup); len(fns) != 1 {
		t.Errorf("function must be returned once, got %d", len(fns))
	}
}

func names(fns []MappingFunc) []string {
	out := make([]string, len(fns))
	for i, f := range fns {
		out[i] = f.Name()
	}
	return out
}

func TestMappingMultiTrigger(t *testing.T) {
	m := NewMappings()
	f := FuncOf{
		FName:     "bridge",
		FTriggers: []string{"a", "b", "a"}, // duplicate trigger collapses
		FApply:    func(message.Event) []message.Pair { return nil },
	}
	if err := m.Add(f); err != nil {
		t.Fatal(err)
	}
	if fns := m.Applicable(message.E("a", 1, "b", 2)); len(fns) != 1 {
		t.Errorf("multi-trigger function must apply once, got %d", len(fns))
	}
}

func TestPaperExperienceExample(t *testing.T) {
	// Paper §3.1: E = (school, Toronto)(graduation year, 1993)… with
	// "professional experience = present date − graduation year" and
	// present date 2003 (publication year) must derive experience 10.
	f := experienceFunc(2003)
	e := message.E("school", "Toronto", "graduation year", 1993,
		"job1", "IBM", "period", "1994-1997",
		"job2", "Microsoft", "period", "1999-present")
	pairs := f.Apply(e)
	if len(pairs) != 1 {
		t.Fatalf("Apply = %v", pairs)
	}
	if pairs[0].Attr != "professional experience" || pairs[0].Val.IntVal() != 10 {
		t.Errorf("derived pair = %v, want professional experience = 10", pairs[0])
	}
}

func TestPairMap(t *testing.T) {
	// Paper §1: "mainframe developer" should also surface resumes
	// mentioning COBOL and the 1960–1980 era.
	p := PairMap{
		MapName: "mainframe-to-cobol",
		Attr:    "position",
		Match:   message.String("mainframe developer"),
		Derived: []message.Pair{
			{Attr: "skill", Val: message.String("COBOL")},
			{Attr: "era", Val: message.String("1960-1980")},
		},
	}
	if got := p.Triggers(); !reflect.DeepEqual(got, []string{"position"}) {
		t.Errorf("Triggers = %v", got)
	}
	hit := p.Apply(message.E("position", "mainframe developer"))
	if len(hit) != 2 || hit[0].Attr != "skill" || hit[1].Attr != "era" {
		t.Errorf("Apply = %v", hit)
	}
	if miss := p.Apply(message.E("position", "web developer")); miss != nil {
		t.Errorf("non-matching value should derive nothing, got %v", miss)
	}
	if miss := p.Apply(message.E("role", "mainframe developer")); miss != nil {
		t.Errorf("non-matching attribute should derive nothing, got %v", miss)
	}
	// Derived pairs must be a fresh slice each call.
	a := p.Apply(message.E("position", "mainframe developer"))
	a[0].Attr = "mutated"
	b := p.Apply(message.E("position", "mainframe developer"))
	if b[0].Attr != "skill" {
		t.Error("Apply must not share its derived slice across calls")
	}
}

func TestMappingsMerge(t *testing.T) {
	a := NewMappings()
	if err := a.Add(experienceFunc(2003)); err != nil {
		t.Fatal(err)
	}
	b := NewMappings()
	if err := b.Add(PairMap{MapName: "m1", Attr: "x", Match: message.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(PairMap{MapName: "m2", Attr: "x", Match: message.Int(2)}); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 3 {
		t.Errorf("Len after merge = %d, want 3", a.Len())
	}
	// Merging a registry with a clashing name fails.
	c := NewMappings()
	if err := c.Add(PairMap{MapName: "m1", Attr: "y", Match: message.Int(9)}); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(c); err == nil {
		t.Error("name clash must fail the merge")
	}
}
