// Package semantic implements the semantic stage of S-ToPSS (paper §3):
// synonym canonicalization, concept-hierarchy expansion and mapping
// functions, composed into the Figure 1 pipeline by Stage.
//
// Each mechanism is usable independently, exactly as the paper requires
// ("Each of the approaches can be used independently and for some
// applications that may be desirable. It is also possible to use all
// three approaches together."), and every lookup is hash-based, which is
// the paper's central performance claim.
package semantic

import (
	"fmt"
	"sort"
	"strings"

	"stopss/internal/message"
)

// Synonyms maps semantically equivalent terms to a canonical "root" term
// (paper §3.1, first approach). It applies both to attribute names
// ("school" → "university") and to string values. Lookup is a single
// hash probe.
type Synonyms struct {
	root   map[string]string   // term → root (roots map to themselves)
	groups map[string][]string // root → members (excluding the root)
}

// NewSynonyms returns an empty synonym table.
func NewSynonyms() *Synonyms {
	return &Synonyms{
		root:   make(map[string]string),
		groups: make(map[string][]string),
	}
}

// AddGroup declares root as the canonical term for every synonym given.
// The root itself is also registered so Canonical(root) = root. A term
// may belong to only one group; conflicting registrations are an error,
// because silently re-rooting a term would change the meaning of
// already-indexed subscriptions.
func (s *Synonyms) AddGroup(root string, synonyms ...string) error {
	if root == "" {
		return fmt.Errorf("semantic: synonym group needs a non-empty root")
	}
	if existing, ok := s.root[root]; ok && existing != root {
		return fmt.Errorf("semantic: %q is already a synonym of %q and cannot become a root", root, existing)
	}
	s.root[root] = root
	// Ontology terms join the global intern table (message.Sym): the
	// matcher compares interned attribute symbols on its hot path, and a
	// loaded ontology's terms are exactly the strings worth sharing.
	message.InternSym(root)
	for _, term := range synonyms {
		if term == "" {
			return fmt.Errorf("semantic: empty synonym in group %q", root)
		}
		if term == root {
			continue
		}
		message.InternSym(term)
		if existing, ok := s.root[term]; ok && existing != root {
			return fmt.Errorf("semantic: %q already maps to root %q, cannot remap to %q", term, existing, root)
		}
		if _, known := s.root[term]; !known {
			s.groups[root] = append(s.groups[root], term)
		}
		s.root[term] = root
	}
	return nil
}

// Canonical returns the root term for t, or t itself when it is unknown
// to the table. The second result reports whether a rewrite occurred.
func (s *Synonyms) Canonical(t string) (string, bool) {
	if r, ok := s.root[t]; ok {
		return r, r != t
	}
	return t, false
}

// IsRoot reports whether t is a registered root term.
func (s *Synonyms) IsRoot(t string) bool { return s.root[t] == t }

// Known reports whether t is registered at all (as a root or a member).
// A known term's canonical form never changes afterwards: AddGroup
// rejects remapping, which is what makes incremental re-indexing after
// a knowledge delta sound (only previously-unknown terms can acquire a
// new canonical form).
func (s *Synonyms) Known(t string) bool {
	_, ok := s.root[t]
	return ok
}

// RootTerms returns every registered root term, sorted. Together with
// GroupOf it allows full enumeration of the table (the ontology diff in
// internal/knowledge needs this).
func (s *Synonyms) RootTerms() []string {
	out := make([]string, 0, len(s.root))
	for term, r := range s.root {
		if term == r {
			out = append(out, term)
		}
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy. The copy shares no mutable state with the
// original, so one can evolve while snapshots of the other stay frozen
// (the copy-on-write discipline of the runtime knowledge base).
func (s *Synonyms) Clone() *Synonyms {
	c := &Synonyms{
		root:   make(map[string]string, len(s.root)),
		groups: make(map[string][]string, len(s.groups)),
	}
	for t, r := range s.root {
		c.root[t] = r
	}
	for r, members := range s.groups {
		c.groups[r] = append([]string(nil), members...)
	}
	return c
}

// DiffTerms returns, sorted, every term whose canonical form differs
// between s and o. Terms unknown to both tables canonicalize to
// themselves on each side, so only registered terms need comparing;
// a root term registered on one side only is NOT a difference (its
// canonical form is itself either way). The runtime knowledge base
// diffs the pre- and post-refold tables with this to re-index exactly
// the subscriptions a log reorganization actually touched.
func (s *Synonyms) DiffTerms(o *Synonyms) []string {
	seen := make(map[string]bool, len(s.root)+len(o.root))
	var out []string
	check := func(t string) {
		if seen[t] {
			return
		}
		seen[t] = true
		a, _ := s.Canonical(t)
		b, _ := o.Canonical(t)
		if a != b {
			out = append(out, t)
		}
	}
	for t := range s.root {
		check(t)
	}
	for t := range o.root {
		check(t)
	}
	sort.Strings(out)
	return out
}

// GroupOf returns the full synonym group of t (root first, then members
// in sorted order), or nil when t is unknown.
func (s *Synonyms) GroupOf(t string) []string {
	r, ok := s.root[t]
	if !ok {
		return nil
	}
	members := append([]string{}, s.groups[r]...)
	sort.Strings(members)
	return append([]string{r}, members...)
}

// Len reports the number of registered terms (roots included).
func (s *Synonyms) Len() int { return len(s.root) }

// Groups reports the number of synonym groups.
func (s *Synonyms) Groups() int { return len(s.groups) }

// Merge copies every group of o into s; conflicts are errors. Used by
// the ontology compiler to combine multiple domain ontologies in one
// system (paper §3.2, multi-domain operation).
func (s *Synonyms) Merge(o *Synonyms) error {
	roots := make([]string, 0, len(o.groups))
	for r := range o.groups {
		roots = append(roots, r)
	}
	sort.Strings(roots)
	for _, r := range roots {
		if err := s.AddGroup(r, o.groups[r]...); err != nil {
			return err
		}
	}
	// Roots without members still need registering.
	for term, r := range o.root {
		if term == r {
			if err := s.AddGroup(r); err != nil {
				return err
			}
		}
	}
	return nil
}

// String summarizes the table for diagnostics.
func (s *Synonyms) String() string {
	return fmt.Sprintf("synonyms{terms: %d, groups: %d}", len(s.root), len(s.groups))
}

// LinearSynonyms is a deliberately naive variant that stores groups in a
// slice and resolves terms by scanning. It exists only for experiment T5
// (the paper's claim that hash structures are "the key aspect of this
// approach in terms of performance"); production code paths always use
// Synonyms.
type LinearSynonyms struct {
	groups [][]string // group[0] is the root
}

// NewLinearSynonyms returns an empty scan-based table.
func NewLinearSynonyms() *LinearSynonyms { return &LinearSynonyms{} }

// AddGroup appends a synonym group with the given root.
func (s *LinearSynonyms) AddGroup(root string, synonyms ...string) {
	s.groups = append(s.groups, append([]string{root}, synonyms...))
}

// Canonical resolves t by scanning every group member.
func (s *LinearSynonyms) Canonical(t string) (string, bool) {
	for _, g := range s.groups {
		for i, term := range g {
			if term == t {
				return g[0], i != 0
			}
		}
	}
	return t, false
}

// canonicalTerm is the stage-internal helper signature shared by both
// implementations.
type canonicalizer interface {
	Canonical(string) (string, bool)
}

var (
	_ canonicalizer = (*Synonyms)(nil)
	_ canonicalizer = (*LinearSynonyms)(nil)
)

// normalizeTerm lower-cases and space-normalizes a term the way the
// ontology loader and the web application do, so that "Graduation Year"
// and "graduation year" meet in the same hash bucket.
func normalizeTerm(t string) string {
	return strings.Join(strings.Fields(strings.ToLower(t)), " ")
}

// NormalizeTerm exposes the shared normal form.
func NormalizeTerm(t string) string { return normalizeTerm(t) }
