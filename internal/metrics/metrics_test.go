package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("Value = %d, want 5", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 16000 {
		t.Errorf("Value = %d, want 16000", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Errorf("Value = %d, want 7", g.Value())
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Count != 0 || s.String() != "n=0" {
		t.Errorf("empty snapshot = %+v", s)
	}
	durations := []time.Duration{
		time.Microsecond, 2 * time.Microsecond, 5 * time.Microsecond,
		10 * time.Microsecond, 100 * time.Microsecond, time.Millisecond,
	}
	for _, d := range durations {
		h.Observe(d)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Errorf("Count = %d", s.Count)
	}
	if s.Min != time.Microsecond || s.Max != time.Millisecond {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if s.Mean <= 0 {
		t.Errorf("Mean = %v", s.Mean)
	}
	// Quantiles are bucket upper bounds: p50 must sit between min and max.
	if s.P50 < s.Min || s.P50 > s.Max*2 {
		t.Errorf("P50 = %v out of plausible range", s.P50)
	}
	if s.P99 < s.P50 {
		t.Errorf("P99 %v < P50 %v", s.P99, s.P50)
	}
	if !strings.Contains(s.String(), "n=6") {
		t.Errorf("String = %q", s.String())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	var h Histogram
	// 1000 observations of exactly 1ms: every quantile must land in the
	// 1ms bucket (upper bound within ~35% of 1ms given 8 buckets/decade).
	for i := 0; i < 1000; i++ {
		h.Observe(time.Millisecond)
	}
	s := h.Snapshot()
	for _, q := range []time.Duration{s.P50, s.P90, s.P99} {
		if q < 900*time.Microsecond || q > 1400*time.Microsecond {
			t.Errorf("quantile %v too far from 1ms", q)
		}
	}
}

func TestHistogramExtremes(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second) // clamped to zero
	h.Observe(0)
	h.Observe(time.Nanosecond)
	h.Observe(10 * time.Minute) // beyond top bucket
	s := h.Snapshot()
	if s.Count != 4 {
		t.Errorf("Count = %d", s.Count)
	}
	if s.Min != 0 {
		t.Errorf("Min = %v", s.Min)
	}
	if s.Max != 10*time.Minute {
		t.Errorf("Max = %v", s.Max)
	}
}

func TestHistogramTime(t *testing.T) {
	var h Histogram
	h.Time(func() { time.Sleep(time.Millisecond) })
	s := h.Snapshot()
	if s.Count != 1 || s.Max < time.Millisecond {
		t.Errorf("Time did not record: %+v", s)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Observe(time.Duration(j) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 4000 {
		t.Errorf("Count = %d, want 4000", s.Count)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("pubs").Add(3)
	r.Counter("pubs").Inc() // same instance
	r.Gauge("depth").Set(2)
	r.Histogram("lat").Observe(time.Millisecond)

	if r.Counter("pubs").Value() != 4 {
		t.Errorf("counter identity broken")
	}
	rep := r.Report()
	for _, want := range []string{"counter", "pubs", "4", "gauge", "depth", "hist", "lat"} {
		if !strings.Contains(rep, want) {
			t.Errorf("Report missing %q:\n%s", want, rep)
		}
	}
	// Sorted output is deterministic.
	if rep != r.Report() {
		t.Error("Report not deterministic")
	}
}

func TestBucketMonotonicity(t *testing.T) {
	prev := time.Duration(0)
	for i := 0; i < bucketCount; i++ {
		b := boundOf(i)
		if b <= prev {
			t.Fatalf("bucket bounds not increasing at %d: %v <= %v", i, b, prev)
		}
		prev = b
	}
	// bucketOf is consistent with boundOf: a value inside bucket i maps
	// to a bucket whose bound is >= the value.
	for _, d := range []time.Duration{
		150 * time.Nanosecond, time.Microsecond, 30 * time.Microsecond,
		time.Millisecond, 70 * time.Millisecond, time.Second, 30 * time.Second,
	} {
		idx := bucketOf(d)
		if boundOf(idx) < d/2 {
			t.Errorf("bucketOf(%v) = %d with bound %v, too small", d, idx, boundOf(idx))
		}
	}
}
