package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("Value = %d, want 5", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 16000 {
		t.Errorf("Value = %d, want 16000", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Errorf("Value = %d, want 7", g.Value())
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Count != 0 || s.String() != "n=0" {
		t.Errorf("empty snapshot = %+v", s)
	}
	durations := []time.Duration{
		time.Microsecond, 2 * time.Microsecond, 5 * time.Microsecond,
		10 * time.Microsecond, 100 * time.Microsecond, time.Millisecond,
	}
	for _, d := range durations {
		h.Observe(d)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Errorf("Count = %d", s.Count)
	}
	if s.Min != time.Microsecond || s.Max != time.Millisecond {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if s.Mean <= 0 {
		t.Errorf("Mean = %v", s.Mean)
	}
	// Quantiles are bucket upper bounds: p50 must sit between min and max.
	if s.P50 < s.Min || s.P50 > s.Max*2 {
		t.Errorf("P50 = %v out of plausible range", s.P50)
	}
	if s.P99 < s.P50 {
		t.Errorf("P99 %v < P50 %v", s.P99, s.P50)
	}
	if !strings.Contains(s.String(), "n=6") {
		t.Errorf("String = %q", s.String())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	var h Histogram
	// 1000 observations of exactly 1ms: every quantile must land in the
	// 1ms bucket (upper bound within ~35% of 1ms given 8 buckets/decade).
	for i := 0; i < 1000; i++ {
		h.Observe(time.Millisecond)
	}
	s := h.Snapshot()
	for _, q := range []time.Duration{s.P50, s.P90, s.P99} {
		if q < 900*time.Microsecond || q > 1400*time.Microsecond {
			t.Errorf("quantile %v too far from 1ms", q)
		}
	}
}

func TestHistogramExtremes(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second) // clamped to zero
	h.Observe(0)
	h.Observe(time.Nanosecond)
	h.Observe(10 * time.Minute) // beyond top bucket
	s := h.Snapshot()
	if s.Count != 4 {
		t.Errorf("Count = %d", s.Count)
	}
	if s.Min != 0 {
		t.Errorf("Min = %v", s.Min)
	}
	if s.Max != 10*time.Minute {
		t.Errorf("Max = %v", s.Max)
	}
}

func TestHistogramTime(t *testing.T) {
	var h Histogram
	h.Time(func() { time.Sleep(time.Millisecond) })
	s := h.Snapshot()
	if s.Count != 1 || s.Max < time.Millisecond {
		t.Errorf("Time did not record: %+v", s)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Observe(time.Duration(j) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 4000 {
		t.Errorf("Count = %d, want 4000", s.Count)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("pubs").Add(3)
	r.Counter("pubs").Inc() // same instance
	r.Gauge("depth").Set(2)
	r.Histogram("lat").Observe(time.Millisecond)

	if r.Counter("pubs").Value() != 4 {
		t.Errorf("counter identity broken")
	}
	rep := r.Report()
	for _, want := range []string{"counter", "pubs", "4", "gauge", "depth", "hist", "lat"} {
		if !strings.Contains(rep, want) {
			t.Errorf("Report missing %q:\n%s", want, rep)
		}
	}
	// Sorted output is deterministic.
	if rep != r.Report() {
		t.Error("Report not deterministic")
	}
}

func TestQuantileEmpty(t *testing.T) {
	var h Histogram
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("Quantile(%v) on empty histogram = %v, want 0", q, got)
		}
	}
	s := h.Snapshot()
	if s.P50 != 0 || s.P99 != 0 || s.Mean != 0 {
		t.Errorf("empty snapshot has nonzero quantiles: %+v", s)
	}
}

func TestQuantileClamping(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	h.Observe(2 * time.Millisecond)
	if got := h.Quantile(-0.5); got != h.Quantile(0) {
		t.Errorf("q<0 not clamped: %v vs %v", got, h.Quantile(0))
	}
	if got := h.Quantile(7); got != h.Quantile(1) {
		t.Errorf("q>1 not clamped: %v vs %v", got, h.Quantile(1))
	}
	if got := h.Quantile(1); got != 2*time.Millisecond {
		t.Errorf("Quantile(1) = %v, want exact max 2ms", got)
	}
	if got := h.Quantile(0); got < time.Millisecond || got > 2*time.Millisecond {
		t.Errorf("Quantile(0) = %v outside observed [1ms, 2ms]", got)
	}
}

func TestQuantileSingleObservation(t *testing.T) {
	var h Histogram
	d := 1234567 * time.Nanosecond
	h.Observe(d)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != d {
			t.Errorf("Quantile(%v) = %v, want exact single observation %v", q, got, d)
		}
	}
	s := h.Snapshot()
	if s.P50 != d || s.P99 != d {
		t.Errorf("snapshot quantiles %v/%v, want %v", s.P50, s.P99, d)
	}
}

func TestQuantileOverflowBucket(t *testing.T) {
	// Observations beyond the top bucket (>100s) must report the exact
	// max, not the top bucket's bound.
	var h Histogram
	d := 10 * time.Minute
	for i := 0; i < 10; i++ {
		h.Observe(d)
	}
	for _, q := range []float64{0.5, 0.99, 1} {
		if got := h.Quantile(q); got != d {
			t.Errorf("Quantile(%v) = %v, want exact overflow max %v", q, got, d)
		}
	}
}

func TestQuantileClampedToObservedRange(t *testing.T) {
	// A bucket's upper bound can exceed the largest observation in it;
	// quantiles must never report a value outside [min, max].
	var h Histogram
	lo, hi := 101*time.Microsecond, 102*time.Microsecond
	h.Observe(lo)
	h.Observe(hi)
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		got := h.Quantile(q)
		if got < lo || got > hi {
			t.Errorf("Quantile(%v) = %v outside observed [%v, %v]", q, got, lo, hi)
		}
	}
}

func TestBucketsCumulative(t *testing.T) {
	var h Histogram
	h.Observe(time.Microsecond)
	h.Observe(time.Millisecond)
	h.Observe(time.Second)
	bs := h.Buckets()
	if len(bs) != bucketCount {
		t.Fatalf("got %d buckets, want %d", len(bs), bucketCount)
	}
	var prev uint64
	for i, b := range bs {
		if b.Cum < prev {
			t.Fatalf("bucket %d cumulative count decreased: %d < %d", i, b.Cum, prev)
		}
		prev = b.Cum
	}
	if bs[len(bs)-1].Cum != 3 {
		t.Fatalf("final cumulative count %d, want 3", bs[len(bs)-1].Cum)
	}
}

func TestBucketMonotonicity(t *testing.T) {
	prev := time.Duration(0)
	for i := 0; i < bucketCount; i++ {
		b := boundOf(i)
		if b <= prev {
			t.Fatalf("bucket bounds not increasing at %d: %v <= %v", i, b, prev)
		}
		prev = b
	}
	// bucketOf is consistent with boundOf: a value inside bucket i maps
	// to a bucket whose bound is >= the value.
	for _, d := range []time.Duration{
		150 * time.Nanosecond, time.Microsecond, 30 * time.Microsecond,
		time.Millisecond, 70 * time.Millisecond, time.Second, 30 * time.Second,
	} {
		idx := bucketOf(d)
		if boundOf(idx) < d/2 {
			t.Errorf("bucketOf(%v) = %d with bound %v, too small", d, idx, boundOf(idx))
		}
	}
}
