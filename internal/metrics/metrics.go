// Package metrics provides the lightweight instrumentation used across
// S-ToPSS: atomic counters, gauges and logarithmic-bucket latency
// histograms with quantile estimation. Everything is safe for concurrent
// use and allocation-free on the hot path.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates durations into logarithmic buckets spanning
// 100ns .. ~100s with 8 sub-buckets per decade. It reports approximate
// quantiles (bucket upper bounds), which is plenty for the latency
// tables of EXPERIMENTS.md.
type Histogram struct {
	mu      sync.Mutex
	buckets [bucketCount]uint64
	count   uint64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

const (
	decades      = 9 // 100ns … 100s
	perDecade    = 8
	bucketCount  = decades*perDecade + 1
	baseDuration = 100 * time.Nanosecond
)

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	if d <= baseDuration {
		return 0
	}
	// log10(d/base) * perDecade
	idx := int(math.Log10(float64(d)/float64(baseDuration)) * perDecade)
	if idx < 0 {
		idx = 0
	}
	if idx >= bucketCount {
		idx = bucketCount - 1
	}
	return idx
}

// boundOf returns the upper bound of bucket i.
func boundOf(i int) time.Duration {
	return time.Duration(float64(baseDuration) * math.Pow(10, float64(i+1)/perDecade))
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.buckets[bucketOf(d)]++
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Time runs f and records its duration.
func (h *Histogram) Time(f func()) {
	t0 := time.Now()
	f()
	h.Observe(time.Since(t0))
}

// Snapshot is a point-in-time view of a histogram.
type Snapshot struct {
	Count uint64
	Sum   time.Duration
	Min   time.Duration
	Max   time.Duration
	Mean  time.Duration
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
}

// Snapshot computes the current view.
func (h *Histogram) Snapshot() Snapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := Snapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	if h.count == 0 {
		return s
	}
	s.Mean = h.sum / time.Duration(h.count)
	s.P50 = h.quantileLocked(0.50)
	s.P90 = h.quantileLocked(0.90)
	s.P99 = h.quantileLocked(0.99)
	return s
}

// Quantile estimates the q-quantile. An empty histogram reports 0 (not
// NaN); q is clamped to [0, 1]; the estimate is clamped to the exact
// observed [min, max], so a single observation reports itself exactly
// and the overflow bucket (>100s) cannot inflate the answer past the
// largest duration actually seen.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

// quantileLocked returns the upper bound of the bucket containing the
// q-quantile, clamped to the observed range. Callers hold h.mu.
func (h *Histogram) quantileLocked(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q < 0 || math.IsNaN(q) {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	est := h.max
	var cum uint64
	for i, n := range h.buckets {
		cum += n
		if cum > target {
			est = boundOf(i)
			break
		}
	}
	if est < h.min {
		est = h.min
	}
	if est > h.max {
		est = h.max
	}
	return est
}

// Buckets copies the cumulative bucket counts with their upper bounds,
// the shape Prometheus exposition wants. The final entry is the
// overflow bucket (upper bound +Inf, rendered by the caller); bound for
// it is reported as the exact observed max.
func (h *Histogram) Buckets() []BucketCount {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]BucketCount, 0, bucketCount)
	var cum uint64
	for i, n := range h.buckets {
		cum += n
		out = append(out, BucketCount{Bound: boundOf(i), Cum: cum})
	}
	return out
}

// BucketCount is one cumulative histogram bucket: the count of
// observations at or below Bound.
type BucketCount struct {
	Bound time.Duration
	Cum   uint64
}

// String renders the snapshot compactly.
func (s Snapshot) String() string {
	if s.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%v p50=%v p90=%v p99=%v max=%v",
		s.Count, s.Mean.Round(time.Nanosecond), s.P50, s.P90, s.P99, s.Max)
}

// Registry is a named collection of metrics for report generation.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns (creating on first use) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating on first use) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Report renders every metric, sorted by name, one per line.
func (r *Registry) Report() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var lines []string
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("counter %-32s %d", name, c.Value()))
	}
	for name, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("gauge   %-32s %d", name, g.Value()))
	}
	for name, h := range r.histograms {
		lines = append(lines, fmt.Sprintf("hist    %-32s %s", name, h.Snapshot()))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
