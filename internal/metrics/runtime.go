package metrics

import (
	rtm "runtime/metrics"
	"time"
)

// RuntimeStats is a point-in-time snapshot of the Go runtime's health
// signals (DESIGN §10): the process-level counterpart to the
// application counters a Registry carries. Everything comes from the
// stdlib runtime/metrics interface, so sampling costs microseconds and
// pulls in no dependency.
type RuntimeStats struct {
	Goroutines      int64         // live goroutines
	HeapBytes       uint64        // bytes in live heap objects
	GCPauseP99      time.Duration // 99th percentile stop-the-world pause
	SchedLatencyP99 time.Duration // 99th percentile run-queue wait
}

// runtimeSamples is the fixed sample set ReadRuntime requests. The
// names are part of the Go runtime's compatibility surface; an unknown
// name yields KindBad, which ReadRuntime treats as zero rather than
// failing the scrape.
var runtimeSampleNames = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

// ReadRuntime samples the runtime's health metrics.
func ReadRuntime() RuntimeStats {
	samples := make([]rtm.Sample, len(runtimeSampleNames))
	for i, name := range runtimeSampleNames {
		samples[i].Name = name
	}
	rtm.Read(samples)
	var out RuntimeStats
	for _, s := range samples {
		switch s.Name {
		case "/sched/goroutines:goroutines":
			if s.Value.Kind() == rtm.KindUint64 {
				out.Goroutines = int64(s.Value.Uint64())
			}
		case "/memory/classes/heap/objects:bytes":
			if s.Value.Kind() == rtm.KindUint64 {
				out.HeapBytes = s.Value.Uint64()
			}
		case "/gc/pauses:seconds":
			if s.Value.Kind() == rtm.KindFloat64Histogram {
				out.GCPauseP99 = histP99(s.Value.Float64Histogram())
			}
		case "/sched/latencies:seconds":
			if s.Value.Kind() == rtm.KindFloat64Histogram {
				out.SchedLatencyP99 = histP99(s.Value.Float64Histogram())
			}
		}
	}
	return out
}

// histP99 resolves the 99th percentile of a runtime float64 histogram
// (values in seconds) to its bucket upper bound — the same resolution
// rule Histogram.Quantile and histogram_quantile use. The runtime's
// outermost buckets can be ±Inf; those resolve to the nearest finite
// boundary so the result is always representable as a Duration.
func histP99(h *rtm.Float64Histogram) time.Duration {
	if h == nil {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(float64(total)*0.99 + 0.5)
	if rank > total {
		rank = total
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			// Bucket i spans Buckets[i] .. Buckets[i+1].
			ub := h.Buckets[i+1]
			if ub > 1e18 || ub != ub { // +Inf or NaN guard
				ub = h.Buckets[i]
			}
			if ub < 0 {
				ub = 0
			}
			return time.Duration(ub * float64(time.Second))
		}
	}
	return 0
}

// SetRuntimeGauges writes a runtime snapshot into the registry as
// gauges (durations in nanoseconds, so the integer gauges keep
// sub-millisecond resolution): runtime.goroutines, runtime.heap_bytes,
// runtime.gc_pause_p99_ns, runtime.sched_latency_p99_ns. Callers
// typically invoke it per scrape so /metrics always reports the
// current process health.
func (r *Registry) SetRuntimeGauges(s RuntimeStats) {
	r.Gauge("runtime.goroutines").Set(s.Goroutines)
	r.Gauge("runtime.heap_bytes").Set(int64(s.HeapBytes))
	r.Gauge("runtime.gc_pause_p99_ns").Set(int64(s.GCPauseP99))
	r.Gauge("runtime.sched_latency_p99_ns").Set(int64(s.SchedLatencyP99))
}
