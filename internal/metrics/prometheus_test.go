package metrics

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("pubs.accepted").Add(42)
	r.Counter("drops").Inc()
	r.Gauge("queue.depth").Set(-3)
	h := r.Histogram("stage.match")
	h.Observe(time.Microsecond)
	h.Observe(time.Microsecond)
	h.Observe(time.Millisecond)

	var b strings.Builder
	if err := r.WritePrometheus(&b, "stopss", map[string]string{
		"broker": `b"1\x` + "\n2", // exercises every escape
	}); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	golden := filepath.Join("testdata", "prometheus.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("prometheus output drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestPrometheusParsesStrict(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(7)
	r.Gauge("g").Set(5)
	h := r.Histogram("lat")
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b, "t", map[string]string{"node": "n1"}); err != nil {
		t.Fatal(err)
	}
	fams, err := parsePrometheusText(b.String())
	if err != nil {
		t.Fatalf("strict parse failed: %v\n%s", err, b.String())
	}
	if fams["t_a_total"] == nil || fams["t_g"] == nil || fams["t_lat_seconds"] == nil {
		t.Fatalf("missing families: %v", fams)
	}
}

func TestPrometheusHistogramCumulativity(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for _, d := range []time.Duration{time.Microsecond, time.Millisecond, time.Second, 10 * time.Minute} {
		h.Observe(d)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b, "", nil); err != nil {
		t.Fatal(err)
	}
	fams, err := parsePrometheusText(b.String())
	if err != nil {
		t.Fatal(err)
	}
	f := fams["lat_seconds"]
	if f == nil || f.typ != "histogram" {
		t.Fatalf("histogram family missing: %v", fams)
	}
	if err := f.checkHistogram(); err != nil {
		t.Fatalf("%v\n%s", err, b.String())
	}
}

// TestConcurrentScrape hammers the registry with Inc/Observe while
// scraping; run under -race this proves exposition never tears.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(time.Duration(i%1000) * time.Microsecond)
				i++
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b, "x", map[string]string{"n": "1"}); err != nil {
			t.Fatal(err)
		}
		if _, err := parsePrometheusText(b.String()); err != nil {
			t.Fatalf("scrape %d unparseable: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}

// --- strict test-side parser for the text exposition format ---

type promFamily struct {
	typ     string
	samples []promSample
}

type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parsePrometheusText is a deliberately strict parser: every sample
// line must be `name{labels} value` or `name value`, every metric must
// follow its own # TYPE line, label values must use only the three
// legal escapes, and names must match the Prometheus grammar.
func parsePrometheusText(text string) (map[string]*promFamily, error) {
	fams := make(map[string]*promFamily)
	var current string
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				return nil, fmt.Errorf("line %d: malformed TYPE: %q", ln+1, line)
			}
			name, typ := parts[2], parts[3]
			if !validMetricName(name) {
				return nil, fmt.Errorf("line %d: invalid metric name %q", ln+1, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: invalid type %q", ln+1, typ)
			}
			if fams[name] != nil {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %q", ln+1, name)
			}
			fams[name] = &promFamily{typ: typ}
			current = name
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // HELP or comment
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", ln+1, err)
		}
		base := s.name
		for _, suf := range []string{"_bucket", "_sum", "_count", "_total"} {
			if fams[base] == nil && strings.HasSuffix(base, suf) {
				if f := fams[strings.TrimSuffix(base, suf)]; f != nil {
					base = strings.TrimSuffix(base, suf)
					break
				}
			}
		}
		// counters expose name_total under a TYPE of the same full name
		if fams[base] == nil && fams[s.name] == nil {
			return nil, fmt.Errorf("sample %q has no TYPE", s.name)
		}
		if fams[base] == nil {
			base = s.name
		}
		if base != current && fams[base] == nil {
			return nil, fmt.Errorf("sample %q outside its family block", s.name)
		}
		fams[base].samples = append(fams[base].samples, s)
	}
	return fams, nil
}

func parseSampleLine(line string) (promSample, error) {
	s := promSample{labels: map[string]string{}}
	rest := line
	brace := strings.IndexByte(rest, '{')
	var nameEnd int
	if brace >= 0 {
		nameEnd = brace
	} else {
		nameEnd = strings.IndexByte(rest, ' ')
		if nameEnd < 0 {
			return s, fmt.Errorf("no value separator in %q", line)
		}
	}
	s.name = rest[:nameEnd]
	if !validMetricName(s.name) {
		return s, fmt.Errorf("invalid metric name %q", s.name)
	}
	rest = rest[nameEnd:]
	if brace >= 0 {
		end := strings.IndexByte(rest, '}')
		if end < 0 {
			return s, fmt.Errorf("unterminated label block in %q", line)
		}
		if err := parseLabels(rest[1:end], s.labels); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimPrefix(rest, " ")
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %v", line, err)
	}
	s.value = v
	return s, nil
}

func parseLabels(block string, into map[string]string) error {
	i := 0
	for i < len(block) {
		eq := strings.IndexByte(block[i:], '=')
		if eq < 0 {
			return fmt.Errorf("label without '=' in %q", block)
		}
		key := block[i : i+eq]
		if !validLabelName(key) {
			return fmt.Errorf("invalid label name %q", key)
		}
		i += eq + 1
		if i >= len(block) || block[i] != '"' {
			return fmt.Errorf("label value not quoted in %q", block)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(block) {
				return fmt.Errorf("unterminated label value in %q", block)
			}
			c := block[i]
			if c == '\\' {
				if i+1 >= len(block) {
					return fmt.Errorf("dangling escape in %q", block)
				}
				switch block[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return fmt.Errorf("illegal escape \\%c in %q", block[i+1], block)
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			if c == '\n' {
				return fmt.Errorf("raw newline in label value in %q", block)
			}
			val.WriteByte(c)
			i++
		}
		into[key] = val.String()
		if i < len(block) {
			if block[i] != ',' {
				return fmt.Errorf("expected ',' after label in %q", block)
			}
			i++
		}
	}
	return nil
}

func validMetricName(n string) bool {
	if n == "" {
		return false
	}
	for i, r := range n {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(n string) bool {
	if n == "" || strings.HasPrefix(n, "__") {
		return false
	}
	for i, r := range n {
		ok := r == '_' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// checkHistogram validates the histogram invariants: le buckets are
// cumulative and non-decreasing, a +Inf bucket exists and equals
// _count, and _sum is present.
func (f *promFamily) checkHistogram() error {
	var prevLE, prevCum float64
	prevLE = -1
	var infCum, count float64
	haveInf, haveSum, haveCount := false, false, false
	for _, s := range f.samples {
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			le := s.labels["le"]
			if le == "" {
				return fmt.Errorf("bucket without le label")
			}
			var bound float64
			if le == "+Inf" {
				haveInf = true
				infCum = s.value
				continue
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("bad le %q: %v", le, err)
			}
			if bound <= prevLE {
				return fmt.Errorf("le bounds not increasing: %v after %v", bound, prevLE)
			}
			if s.value < prevCum {
				return fmt.Errorf("bucket counts not cumulative: %v after %v", s.value, prevCum)
			}
			prevLE, prevCum = bound, s.value
		case strings.HasSuffix(s.name, "_sum"):
			haveSum = true
		case strings.HasSuffix(s.name, "_count"):
			haveCount = true
			count = s.value
		}
	}
	if !haveInf {
		return fmt.Errorf("missing le=\"+Inf\" bucket")
	}
	if !haveSum || !haveCount {
		return fmt.Errorf("missing _sum or _count")
	}
	if infCum != count {
		return fmt.Errorf("+Inf bucket %v != _count %v", infCum, count)
	}
	if prevCum > infCum {
		return fmt.Errorf("finite bucket %v exceeds +Inf %v", prevCum, infCum)
	}
	return nil
}
