package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// WritePrometheus renders every metric in the registry in the
// Prometheus text exposition format (version 0.0.4).
//
// Metric names are prefixed with prefix + "_" (when non-empty) and
// sanitized: any rune outside [a-zA-Z0-9_:] becomes '_', so the
// registry's dotted names ("stage.match") surface as Prometheus-legal
// ones ("stage_match"). labels are attached to every sample, values
// escaped per the format (backslash, double-quote, newline).
//
// Counters render as `<name>_total` counter samples. Gauges render as
// gauge samples. Histograms render as native Prometheus histograms in
// SECONDS (the ecosystem convention): cumulative `le` buckets, then
// `_sum` and `_count`. Only buckets whose cumulative count differs
// from the previous one are emitted, plus the mandatory `le="+Inf"` —
// sound because buckets are cumulative, and it keeps 73 log-scale
// buckets from bloating every scrape.
func (r *Registry) WritePrometheus(w io.Writer, prefix string, labels map[string]string) error {
	lbl := renderLabels(labels)

	type counterSample struct {
		name string
		v    uint64
	}
	type gaugeSample struct {
		name string
		v    int64
	}
	type histSample struct {
		name    string
		buckets []BucketCount
		snap    Snapshot
	}

	// Snapshot under the registry lock, render outside it: Observe and
	// Inc during a scrape must never block on the writer.
	r.mu.Lock()
	counters := make([]counterSample, 0, len(r.counters))
	for name, c := range r.counters {
		counters = append(counters, counterSample{sanitizeName(prefix, name), c.Value()})
	}
	gauges := make([]gaugeSample, 0, len(r.gauges))
	for name, g := range r.gauges {
		gauges = append(gauges, gaugeSample{sanitizeName(prefix, name), g.Value()})
	}
	hists := make([]histSample, 0, len(r.histograms))
	for name, h := range r.histograms {
		hists = append(hists, histSample{sanitizeName(prefix, name) + "_seconds", h.Buckets(), h.Snapshot()})
	}
	r.mu.Unlock()

	sort.Slice(counters, func(i, j int) bool { return counters[i].name < counters[j].name })
	sort.Slice(gauges, func(i, j int) bool { return gauges[i].name < gauges[j].name })
	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })

	var b strings.Builder
	for _, c := range counters {
		fmt.Fprintf(&b, "# TYPE %s_total counter\n", c.name)
		fmt.Fprintf(&b, "%s_total%s %d\n", c.name, lbl, c.v)
	}
	for _, g := range gauges {
		fmt.Fprintf(&b, "# TYPE %s gauge\n", g.name)
		fmt.Fprintf(&b, "%s%s %d\n", g.name, lbl, g.v)
	}
	for _, h := range hists {
		fmt.Fprintf(&b, "# TYPE %s histogram\n", h.name)
		var prev uint64
		for i, bc := range h.buckets {
			if i > 0 && bc.Cum == prev {
				continue
			}
			prev = bc.Cum
			fmt.Fprintf(&b, "%s_bucket%s %d\n",
				h.name, bucketLabels(labels, formatSeconds(bc.Bound)), bc.Cum)
		}
		fmt.Fprintf(&b, "%s_bucket%s %d\n", h.name, bucketLabels(labels, "+Inf"), h.snap.Count)
		fmt.Fprintf(&b, "%s_sum%s %s\n", h.name, lbl, formatSeconds(h.snap.Sum))
		fmt.Fprintf(&b, "%s_count%s %d\n", h.name, lbl, h.snap.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// sanitizeName joins prefix and name and maps every rune outside the
// Prometheus metric-name alphabet to '_'. A leading digit gets a '_'
// prepended.
func sanitizeName(prefix, name string) string {
	full := name
	if prefix != "" {
		full = prefix + "_" + name
	}
	var b strings.Builder
	b.Grow(len(full) + 1)
	for i, r := range full {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9')
		if !ok {
			b.WriteByte('_')
			continue
		}
		if i == 0 && r >= '0' && r <= '9' {
			b.WriteByte('_')
		}
		b.WriteRune(r)
	}
	return b.String()
}

// renderLabels builds the `{k="v",...}` clause ("" when empty), keys
// sorted, values escaped.
func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	return "{" + labelPairs(labels) + "}"
}

// bucketLabels builds the label clause for one histogram bucket,
// merging the shared labels with le.
func bucketLabels(labels map[string]string, le string) string {
	pairs := labelPairs(labels)
	if pairs != "" {
		pairs += ","
	}
	return "{" + pairs + `le="` + le + `"}`
}

func labelPairs(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, sanitizeName("", k)+`="`+escapeLabelValue(labels[k])+`"`)
	}
	return strings.Join(parts, ",")
}

// escapeLabelValue escapes backslash, double-quote and newline, the
// three characters the text format requires escaping in label values.
func escapeLabelValue(v string) string {
	var b strings.Builder
	b.Grow(len(v))
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// formatSeconds renders a duration as a float second count with enough
// precision for nanosecond-scale bounds and no exponent notation.
func formatSeconds(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'f', -1, 64)
}
