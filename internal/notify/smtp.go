package notify

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"
)

// SMTPTransport delivers notifications as mail messages over a minimal
// RFC 5321 subset (HELO, MAIL FROM, RCPT TO, DATA, QUIT). Addresses have
// the form "mailbox@host:port"; the host:port part is dialed, the
// mailbox is the RCPT. Each Send performs one full SMTP session — the
// protocol makes this transport the slow, reliable end of the spectrum
// in experiment T8.
type SMTPTransport struct {
	From        string // envelope sender, default "stopss@localhost"
	dialTimeout time.Duration
}

// NewSMTPTransport returns an SMTP transport.
func NewSMTPTransport(from string) *SMTPTransport {
	if from == "" {
		from = "stopss@localhost"
	}
	return &SMTPTransport{From: from, dialTimeout: 2 * time.Second}
}

// Name implements Transport.
func (t *SMTPTransport) Name() string { return "smtp" }

// Send implements Transport.
func (t *SMTPTransport) Send(addr string, n Notification) error {
	mailbox, hostport, ok := splitMailAddr(addr)
	if !ok {
		return fmt.Errorf("notify/smtp: address %q must be mailbox@host:port", addr)
	}
	body, err := n.Encode()
	if err != nil {
		return err
	}

	conn, err := net.DialTimeout("tcp", hostport, t.dialTimeout)
	if err != nil {
		return fmt.Errorf("notify/smtp: dial %s: %w", hostport, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	r := bufio.NewReader(conn)

	step := func(cmd string, wantCode string) error {
		if cmd != "" {
			if _, err := fmt.Fprintf(conn, "%s\r\n", cmd); err != nil {
				return fmt.Errorf("notify/smtp: send %q: %w", cmd, err)
			}
		}
		line, err := r.ReadString('\n')
		if err != nil {
			return fmt.Errorf("notify/smtp: read reply: %w", err)
		}
		if !strings.HasPrefix(line, wantCode) {
			return fmt.Errorf("notify/smtp: unexpected reply %q (want %s)", strings.TrimSpace(line), wantCode)
		}
		return nil
	}

	if err := step("", "220"); err != nil { // greeting
		return err
	}
	if err := step("HELO stopss", "250"); err != nil {
		return err
	}
	if err := step(fmt.Sprintf("MAIL FROM:<%s>", t.From), "250"); err != nil {
		return err
	}
	if err := step(fmt.Sprintf("RCPT TO:<%s>", mailbox), "250"); err != nil {
		return err
	}
	if err := step("DATA", "354"); err != nil {
		return err
	}
	msg := fmt.Sprintf("Subject: S-ToPSS notification %d\r\n\r\n%s\r\n.", n.Seq, dotStuff(string(body)))
	if err := step(msg, "250"); err != nil {
		return err
	}
	return step("QUIT", "221")
}

// Close implements Transport (sessions are per-send; nothing to close).
func (t *SMTPTransport) Close() error { return nil }

func splitMailAddr(addr string) (mailbox, hostport string, ok bool) {
	i := strings.LastIndex(addr, "@")
	if i <= 0 || i == len(addr)-1 {
		return "", "", false
	}
	return addr[:i], addr[i+1:], true
}

// dotStuff escapes leading dots per RFC 5321 §4.5.2.
func dotStuff(s string) string {
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		if strings.HasPrefix(l, ".") {
			lines[i] = "." + l
		}
	}
	return strings.Join(lines, "\n")
}

// Mail is a message received by the SMTPSink.
type Mail struct {
	From string
	To   string
	Body string
}

// SMTPSink is a minimal SMTP server accepting the subset the transport
// speaks. Received messages are passed to the handler; the notification
// payload is the body after the blank line.
type SMTPSink struct {
	ln net.Listener
	wg sync.WaitGroup
}

// NewSMTPSink listens on addr and invokes handle per received mail.
func NewSMTPSink(addr string, handle func(Mail)) (*SMTPSink, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("notify/smtp: listen %s: %w", addr, err)
	}
	s := &SMTPSink{ln: ln}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.session(conn, handle)
			}()
		}
	}()
	return s, nil
}

// Addr returns the bound address.
func (s *SMTPSink) Addr() string { return s.ln.Addr().String() }

func (s *SMTPSink) session(conn net.Conn, handle func(Mail)) {
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	r := bufio.NewReader(conn)
	say := func(code, text string) bool {
		_, err := fmt.Fprintf(conn, "%s %s\r\n", code, text)
		return err == nil
	}
	if !say("220", "stopss-sink ready") {
		return
	}
	var mail Mail
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		line = strings.TrimRight(line, "\r\n")
		cmd := strings.ToUpper(line)
		switch {
		case strings.HasPrefix(cmd, "HELO"), strings.HasPrefix(cmd, "EHLO"):
			say("250", "hello")
		case strings.HasPrefix(cmd, "MAIL FROM:"):
			mail.From = strings.Trim(line[len("MAIL FROM:"):], "<> ")
			say("250", "ok")
		case strings.HasPrefix(cmd, "RCPT TO:"):
			mail.To = strings.Trim(line[len("RCPT TO:"):], "<> ")
			say("250", "ok")
		case cmd == "DATA":
			if !say("354", "end with .") {
				return
			}
			var body []string
			for {
				l, err := r.ReadString('\n')
				if err != nil {
					return
				}
				l = strings.TrimRight(l, "\r\n")
				if l == "." {
					break
				}
				l = strings.TrimPrefix(l, ".") // un-stuff
				body = append(body, l)
			}
			// Strip headers: body is everything after the first blank line.
			text := strings.Join(body, "\n")
			if i := strings.Index(text, "\n\n"); i >= 0 {
				text = text[i+2:]
			}
			mail.Body = text
			handle(mail)
			say("250", "queued")
			mail = Mail{}
		case cmd == "QUIT":
			say("221", "bye")
			return
		case cmd == "RSET":
			mail = Mail{}
			say("250", "ok")
		case cmd == "NOOP":
			say("250", "ok")
		default:
			if !say("502", "command not implemented") {
				return
			}
		}
	}
}

// Close stops the sink.
func (s *SMTPSink) Close() error {
	err := s.ln.Close()
	return err
}
