package notify

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"
)

// TCPTransport delivers newline-delimited JSON notifications over TCP.
// Connections are cached per destination and re-dialed transparently
// after failures (the retry loop of the engine then re-sends).
type TCPTransport struct {
	dialTimeout time.Duration

	mu    sync.Mutex
	conns map[string]net.Conn
}

// NewTCPTransport returns a TCP transport with the given dial timeout
// (<=0 selects 2s).
func NewTCPTransport(dialTimeout time.Duration) *TCPTransport {
	if dialTimeout <= 0 {
		dialTimeout = 2 * time.Second
	}
	return &TCPTransport{dialTimeout: dialTimeout, conns: make(map[string]net.Conn)}
}

// Name implements Transport.
func (t *TCPTransport) Name() string { return "tcp" }

// Send implements Transport.
func (t *TCPTransport) Send(addr string, n Notification) error {
	b, err := n.Encode()
	if err != nil {
		return err
	}
	b = append(b, '\n')

	t.mu.Lock()
	defer t.mu.Unlock()
	conn := t.conns[addr]
	if conn == nil {
		conn, err = net.DialTimeout("tcp", addr, t.dialTimeout)
		if err != nil {
			return fmt.Errorf("notify/tcp: dial %s: %w", addr, err)
		}
		t.conns[addr] = conn
	}
	if _, err := conn.Write(b); err != nil {
		// Connection went stale: drop it so the retry re-dials.
		conn.Close()
		delete(t.conns, addr)
		return fmt.Errorf("notify/tcp: write to %s: %w", addr, err)
	}
	return nil
}

// Close implements Transport.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	var firstErr error
	for addr, c := range t.conns {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		delete(t.conns, addr)
	}
	return firstErr
}

// TCPSink is the receiving side used by the demo and the tests: it
// accepts connections, decodes one notification per line and hands each
// to the callback.
type TCPSink struct {
	ln net.Listener
	wg sync.WaitGroup

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// NewTCPSink listens on addr ("127.0.0.1:0" for an ephemeral port) and
// invokes handle for every received notification.
func NewTCPSink(addr string, handle func(Notification)) (*TCPSink, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("notify/tcp: listen %s: %w", addr, err)
	}
	s := &TCPSink{ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop(handle)
	return s, nil
}

// Addr returns the bound address.
func (s *TCPSink) Addr() string { return s.ln.Addr().String() }

func (s *TCPSink) acceptLoop(handle func(Notification)) {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			sc := bufio.NewScanner(conn)
			sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
			for sc.Scan() {
				if n, err := DecodeNotification(sc.Bytes()); err == nil {
					handle(n)
				}
			}
		}()
	}
}

// Close stops the sink: the listener and every accepted connection are
// closed, so peers observe the shutdown on their next write.
func (s *TCPSink) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	return s.ln.Close()
}
