// Package notify implements the notification engine of the S-ToPSS
// demonstration (paper §4, Figure 2): when a publication matches a
// subscription, the engine delivers a notification to the subscriber
// over one of several transports — TCP, UDP, SMTP or SMS.
//
// TCP, UDP and SMTP are real protocol implementations over the loopback
// network; SMS is simulated by an in-process gateway with message
// segmentation and rate limiting (DESIGN.md §2 records the
// substitution). Delivery is asynchronous through a bounded queue with
// retry, exponential backoff and a bounded dead-letter list; a
// delivery hook reports per-delivery outcomes so the broker's durable
// journal can acknowledge or park each notification.
package notify

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"stopss/internal/message"
	"stopss/internal/metrics"
)

// Notification is what a subscriber receives when a publication matches
// one of its subscriptions.
type Notification struct {
	SubID      message.SubID `json:"sub_id"`
	Subscriber string        `json:"subscriber"`
	Event      message.Event `json:"event"`
	Mode       string        `json:"mode,omitempty"` // semantic | syntactic
	Seq        uint64        `json:"seq,omitempty"`  // dispatcher sequence number
	// JournalSeq carries the publication's journal sequence number for
	// durable subscriptions (internal/journal); 0 means fire-and-forget.
	// The broker's delivery hook uses it to advance the durable cursor
	// on acknowledged delivery.
	JournalSeq uint64 `json:"journal_seq,omitempty"`
	// PubID is the publication's federation-wide trace identity
	// (internal/trace, `broker#epoch/seq`). The broker's delivery hook
	// closes the publication's span chain with it; subscribers can use
	// it to correlate a notification with `GET /api/trace/<pubID>`.
	PubID string `json:"pub_id,omitempty"`
}

// Encode renders the notification as one JSON line (no trailing newline).
func (n Notification) Encode() ([]byte, error) {
	b, err := json.Marshal(n)
	if err != nil {
		return nil, fmt.Errorf("notify: encoding notification: %w", err)
	}
	return b, nil
}

// DecodeNotification parses one JSON line.
func DecodeNotification(b []byte) (Notification, error) {
	var n Notification
	if err := json.Unmarshal(b, &n); err != nil {
		return Notification{}, fmt.Errorf("notify: decoding notification: %w", err)
	}
	return n, nil
}

// Transport delivers notifications to an address whose format is
// transport-specific (host:port for TCP/UDP, mailbox for SMTP, phone
// number for SMS). Implementations must be safe for concurrent use.
type Transport interface {
	Name() string
	Send(addr string, n Notification) error
	Close() error
}

// Route binds a subscriber to a transport and address.
type Route struct {
	Transport string
	Addr      string
}

// ErrQueueFull is returned by Dispatch when the engine's bounded queue
// is saturated; callers may retry or drop.
var ErrQueueFull = errors.New("notify: queue full")

// ErrClosed is returned after Close.
var ErrClosed = errors.New("notify: engine closed")

// Config tunes the dispatcher.
type Config struct {
	QueueSize  int           // bounded queue length (default 1024)
	Workers    int           // delivery goroutines (default 4)
	MaxRetries int           // attempts per notification beyond the first (default 3)
	Backoff    time.Duration // base backoff, doubled per retry (default 1ms)
	// DeadLetterLimit bounds the dead-letter list (DESIGN §2): when a
	// retry-exhausted notification would push past the cap, the OLDEST
	// dead letter is evicted and counted in Stats.DeadLettersDropped.
	// Default 1024; negative means unlimited (the pre-cap behaviour).
	DeadLetterLimit int
}

func (c Config) withDefaults() Config {
	if c.QueueSize <= 0 {
		c.QueueSize = 1024
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = time.Millisecond
	}
	if c.DeadLetterLimit == 0 {
		c.DeadLetterLimit = 1024
	}
	return c
}

// DeadLetter records a notification that exhausted its retries.
type DeadLetter struct {
	Notification Notification
	Route        Route
	Err          error
	Attempts     int
}

type job struct {
	n Notification
	r Route
}

// DeliveryHook observes every delivery's final outcome: err is nil on
// success and the last transport error when retries were exhausted.
// On failure, returning true claims the notification — it is "parked"
// (the durable journal will redeliver it) instead of being appended to
// the dead-letter list. The hook runs on delivery worker goroutines
// and must not block.
type DeliveryHook func(n Notification, r Route, err error, attempts int) bool

// Stats summarizes dispatcher state beyond the metrics registry.
type Stats struct {
	DeadLetters        int    // dead letters currently held
	DeadLettersDropped uint64 // dead letters evicted by the size cap
	Parked             uint64 // failed deliveries claimed by the hook (journal-parked)
	Delivered          uint64 // successful deliveries, all transports
	Retried            uint64 // extra attempts beyond the first (success or not)
}

// Engine is the notification dispatcher of Figure 2.
type Engine struct {
	cfg        Config
	transports map[string]Transport
	queue      chan job
	wg         sync.WaitGroup
	inflight   atomic.Int64
	delivered  atomic.Uint64
	retried    atomic.Uint64

	mu          sync.Mutex
	routes      map[string]Route // subscriber → route
	dead        []DeadLetter
	deadDropped uint64
	parked      uint64
	hook        DeliveryHook
	closed      bool
	seq         uint64

	reg *metrics.Registry
}

// NewEngine builds a dispatcher over the given transports.
func NewEngine(cfg Config, transports ...Transport) (*Engine, error) {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:        cfg,
		transports: make(map[string]Transport, len(transports)),
		queue:      make(chan job, cfg.QueueSize),
		routes:     make(map[string]Route),
		reg:        metrics.NewRegistry(),
	}
	for _, tr := range transports {
		if tr.Name() == "" {
			return nil, fmt.Errorf("notify: transport with empty name")
		}
		if _, dup := e.transports[tr.Name()]; dup {
			return nil, fmt.Errorf("notify: duplicate transport %q", tr.Name())
		}
		e.transports[tr.Name()] = tr
	}
	for i := 0; i < cfg.Workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e, nil
}

// SetDeliveryHook installs (or clears, with nil) the per-delivery
// outcome callback. The broker uses it to acknowledge durable
// deliveries (advancing the journal cursor) and to park
// retry-exhausted durable notifications in the journal instead of the
// dead-letter list.
func (e *Engine) SetDeliveryHook(h DeliveryHook) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.hook = h
}

// SetRoute binds a subscriber to a transport/address. The transport must
// be registered.
func (e *Engine) SetRoute(subscriber string, r Route) error {
	if _, ok := e.transports[r.Transport]; !ok {
		return fmt.Errorf("notify: unknown transport %q", r.Transport)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.routes[subscriber] = r
	return nil
}

// RouteOf returns the subscriber's route.
func (e *Engine) RouteOf(subscriber string) (Route, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	r, ok := e.routes[subscriber]
	return r, ok
}

// Dispatch enqueues a notification for the subscriber it names. The
// call never blocks: a full queue returns ErrQueueFull.
func (e *Engine) Dispatch(n Notification) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	r, ok := e.routes[n.Subscriber]
	if !ok {
		e.mu.Unlock()
		return fmt.Errorf("notify: no route for subscriber %q", n.Subscriber)
	}
	e.seq++
	n.Seq = e.seq
	e.mu.Unlock()

	// inflight counts accepted-but-not-yet-delivered notifications
	// (queued or executing), so Drain has no dequeue/track gap.
	e.inflight.Add(1)
	select {
	case e.queue <- job{n: n, r: r}:
		e.reg.Counter("enqueued").Inc()
		return nil
	default:
		e.inflight.Add(-1)
		e.reg.Counter("rejected").Inc()
		return ErrQueueFull
	}
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for j := range e.queue {
		e.deliver(j)
		e.inflight.Add(-1)
	}
}

func (e *Engine) deliver(j job) {
	tr := e.transports[j.r.Transport]
	lat := e.reg.Histogram("latency." + j.r.Transport)
	e.mu.Lock()
	hook := e.hook
	e.mu.Unlock()
	var err error
	backoff := e.cfg.Backoff
	attempts := 0
	for attempt := 0; attempt <= e.cfg.MaxRetries; attempt++ {
		attempts++
		t0 := time.Now()
		err = tr.Send(j.r.Addr, j.n)
		if err == nil {
			lat.Observe(time.Since(t0))
			e.reg.Counter("delivered." + j.r.Transport).Inc()
			e.delivered.Add(1)
			if attempt > 0 {
				e.reg.Counter("recovered").Add(uint64(attempt))
				e.retried.Add(uint64(attempt))
			}
			if hook != nil {
				hook(j.n, j.r, nil, attempts)
			}
			return
		}
		e.reg.Counter("attempts_failed." + j.r.Transport).Inc()
		if attempt < e.cfg.MaxRetries {
			time.Sleep(backoff)
			backoff *= 2
		}
	}
	if attempts > 1 {
		e.retried.Add(uint64(attempts - 1))
	}
	if hook != nil && hook(j.n, j.r, err, attempts) {
		// Claimed: the durable journal retains the publication, so the
		// dead-letter list (a lossy diagnostic buffer) is not involved.
		e.reg.Counter("parked").Inc()
		e.mu.Lock()
		e.parked++
		e.mu.Unlock()
		return
	}
	e.reg.Counter("dead_lettered").Inc()
	e.mu.Lock()
	if e.cfg.DeadLetterLimit > 0 && len(e.dead) >= e.cfg.DeadLetterLimit {
		drop := len(e.dead) - e.cfg.DeadLetterLimit + 1
		copy(e.dead, e.dead[drop:])
		e.dead = e.dead[:len(e.dead)-drop]
		e.deadDropped += uint64(drop)
		e.reg.Counter("dead_dropped").Add(uint64(drop))
	}
	e.dead = append(e.dead, DeadLetter{Notification: j.n, Route: j.r, Err: err, Attempts: attempts})
	e.mu.Unlock()
}

// DeadLetters returns a copy of the dead-letter list.
func (e *Engine) DeadLetters() []DeadLetter {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]DeadLetter, len(e.dead))
	copy(out, e.dead)
	return out
}

// Stats snapshots dispatcher state.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Stats{
		DeadLetters:        len(e.dead),
		DeadLettersDropped: e.deadDropped,
		Parked:             e.parked,
		Delivered:          e.delivered.Load(),
		Retried:            e.retried.Load(),
	}
}

// Metrics exposes the dispatcher's registry.
func (e *Engine) Metrics() *metrics.Registry { return e.reg }

// Drain blocks until the queue is empty and every in-flight delivery
// has finished, or the timeout elapses. It reports whether the engine
// fully drained.
func (e *Engine) Drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if e.inflight.Load() == 0 {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return e.inflight.Load() == 0
}

// Close stops accepting work, waits for the workers and closes every
// transport. Safe to call once.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	e.closed = true
	e.mu.Unlock()

	close(e.queue)
	e.wg.Wait()
	var firstErr error
	for _, tr := range e.transports {
		if err := tr.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
