package notify

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"stopss/internal/message"
)

func sampleNotification(id message.SubID) Notification {
	return Notification{
		SubID:      id,
		Subscriber: "recruiter-1",
		Event:      message.E("school", "Toronto", "degree", "PhD"),
		Mode:       "semantic",
	}
}

func TestNotificationRoundTrip(t *testing.T) {
	n := sampleNotification(42)
	b, err := n.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeNotification(b)
	if err != nil {
		t.Fatal(err)
	}
	if back.SubID != 42 || back.Subscriber != "recruiter-1" || !back.Event.Equal(n.Event) {
		t.Errorf("round trip changed notification: %+v", back)
	}
	if _, err := DecodeNotification([]byte("{broken")); err == nil {
		t.Error("garbage must not decode")
	}
}

// collector gathers notifications thread-safely.
type collector struct {
	mu   sync.Mutex
	seen []Notification
}

func (c *collector) add(n Notification) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seen = append(c.seen, n)
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.seen)
}

func (c *collector) waitFor(t *testing.T, n int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if c.count() >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d notifications, have %d", n, c.count())
}

func TestTCPTransportLoopback(t *testing.T) {
	var col collector
	sink, err := NewTCPSink("127.0.0.1:0", col.add)
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	tr := NewTCPTransport(0)
	defer tr.Close()
	for i := 1; i <= 20; i++ {
		if err := tr.Send(sink.Addr(), sampleNotification(message.SubID(i))); err != nil {
			t.Fatal(err)
		}
	}
	col.waitFor(t, 20, 2*time.Second)
	if col.seen[0].Subscriber != "recruiter-1" {
		t.Errorf("payload corrupted: %+v", col.seen[0])
	}
}

func TestTCPTransportReconnects(t *testing.T) {
	var col collector
	sink, err := NewTCPSink("127.0.0.1:0", col.add)
	if err != nil {
		t.Fatal(err)
	}
	addr := sink.Addr()
	tr := NewTCPTransport(0)
	defer tr.Close()
	if err := tr.Send(addr, sampleNotification(1)); err != nil {
		t.Fatal(err)
	}
	col.waitFor(t, 1, 2*time.Second)
	// Kill the sink; sends should eventually fail (first write may
	// succeed into the OS buffer before the RST arrives).
	sink.Close()
	failed := false
	for i := 0; i < 20 && !failed; i++ {
		if err := tr.Send(addr, sampleNotification(2)); err != nil {
			failed = true
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !failed {
		t.Fatal("sends kept succeeding after sink closed")
	}
	// New sink on a fresh port: transport dials again.
	var col2 collector
	sink2, err := NewTCPSink("127.0.0.1:0", col2.add)
	if err != nil {
		t.Fatal(err)
	}
	defer sink2.Close()
	if err := tr.Send(sink2.Addr(), sampleNotification(3)); err != nil {
		t.Fatalf("send to new sink: %v", err)
	}
	col2.waitFor(t, 1, 2*time.Second)
}

func TestUDPTransportLoopback(t *testing.T) {
	var col collector
	sink, err := NewUDPSink("127.0.0.1:0", col.add)
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	tr := NewUDPTransport()
	defer tr.Close()
	for i := 1; i <= 20; i++ {
		if err := tr.Send(sink.Addr(), sampleNotification(message.SubID(i))); err != nil {
			t.Fatal(err)
		}
	}
	col.waitFor(t, 20, 2*time.Second)
}

func TestUDPOversizeRejected(t *testing.T) {
	tr := NewUDPTransport()
	defer tr.Close()
	big := Notification{Subscriber: strings.Repeat("x", maxUDPPayload)}
	if err := tr.Send("127.0.0.1:9", big); err == nil {
		t.Error("oversize datagram must be rejected locally")
	}
}

func TestSMTPTransportLoopback(t *testing.T) {
	var mu sync.Mutex
	var mails []Mail
	sink, err := NewSMTPSink("127.0.0.1:0", func(m Mail) {
		mu.Lock()
		defer mu.Unlock()
		mails = append(mails, m)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	tr := NewSMTPTransport("engine@stopss")
	n := sampleNotification(7)
	n.Seq = 99
	if err := tr.Send("recruiter@"+sink.Addr(), n); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		cnt := len(mails)
		mu.Unlock()
		if cnt > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("mail never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	m := mails[0]
	mu.Unlock()
	if m.From != "engine@stopss" || m.To != "recruiter" {
		t.Errorf("envelope = %+v", m)
	}
	back, err := DecodeNotification([]byte(strings.TrimSpace(m.Body)))
	if err != nil {
		t.Fatalf("body is not a notification: %v\n%q", err, m.Body)
	}
	if back.SubID != 7 {
		t.Errorf("SubID = %d", back.SubID)
	}
}

func TestSMTPAddressValidation(t *testing.T) {
	tr := NewSMTPTransport("")
	for _, bad := range []string{"nohost", "@host:1", "box@"} {
		if err := tr.Send(bad, sampleNotification(1)); err == nil {
			t.Errorf("address %q should be rejected", bad)
		}
	}
}

func TestSMSSegmentationAndReassembly(t *testing.T) {
	g := NewSMSGateway(0, 0) // no rate limit
	n := sampleNotification(1)
	n.Event = message.E("blob", strings.Repeat("a", 400))
	if err := g.Send("+1-416-555-0199", n); err != nil {
		t.Fatal(err)
	}
	msgs := g.Messages()
	if len(msgs) < 3 {
		t.Fatalf("expected >= 3 segments, got %d", len(msgs))
	}
	for _, m := range msgs {
		if len(m.Payload) > segmentSize {
			t.Errorf("segment of %d chars exceeds %d", len(m.Payload), segmentSize)
		}
		if m.Parts != len(msgs) {
			t.Errorf("segment claims %d parts, want %d", m.Parts, len(msgs))
		}
	}
	joined := g.Reassemble("+1-416-555-0199")
	if len(joined) != 1 {
		t.Fatalf("reassembled %d payloads", len(joined))
	}
	back, err := DecodeNotification([]byte(joined[0]))
	if err != nil {
		t.Fatalf("reassembly corrupted payload: %v", err)
	}
	if !back.Event.Equal(n.Event) {
		t.Error("event lost in segmentation")
	}
}

func TestSMSRateLimit(t *testing.T) {
	g := NewSMSGateway(1, 2) // 1 segment/s, burst 2
	ok, limited := 0, 0
	for i := 0; i < 5; i++ {
		if err := g.Send("x", sampleNotification(message.SubID(i))); err != nil {
			limited++
		} else {
			ok++
		}
	}
	if ok == 0 || limited == 0 {
		t.Errorf("rate limiter inert: ok=%d limited=%d", ok, limited)
	}
}

func TestEngineDeliversAcrossTransports(t *testing.T) {
	var col collector
	tcpSink, err := NewTCPSink("127.0.0.1:0", col.add)
	if err != nil {
		t.Fatal(err)
	}
	defer tcpSink.Close()
	udpSink, err := NewUDPSink("127.0.0.1:0", col.add)
	if err != nil {
		t.Fatal(err)
	}
	defer udpSink.Close()
	sms := NewSMSGateway(0, 0)

	eng, err := NewEngine(Config{Workers: 2},
		NewTCPTransport(0), NewUDPTransport(), sms)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SetRoute("alice", Route{Transport: "tcp", Addr: tcpSink.Addr()}); err != nil {
		t.Fatal(err)
	}
	if err := eng.SetRoute("bob", Route{Transport: "udp", Addr: udpSink.Addr()}); err != nil {
		t.Fatal(err)
	}
	if err := eng.SetRoute("carol", Route{Transport: "sms", Addr: "+1-416"}); err != nil {
		t.Fatal(err)
	}
	if err := eng.SetRoute("dave", Route{Transport: "warp", Addr: "x"}); err == nil {
		t.Error("unknown transport must be rejected")
	}

	for i := 0; i < 10; i++ {
		for _, who := range []string{"alice", "bob", "carol"} {
			n := sampleNotification(message.SubID(i))
			n.Subscriber = who
			if err := eng.Dispatch(n); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !eng.Drain(2 * time.Second) {
		t.Fatal("queue did not drain")
	}
	col.waitFor(t, 20, 2*time.Second) // tcp + udp
	deadline := time.Now().Add(time.Second)
	for len(sms.Reassemble("+1-416")) < 10 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := len(sms.Reassemble("+1-416")); got != 10 {
		t.Errorf("sms deliveries = %d, want 10", got)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Dispatch(sampleNotification(1)); !errors.Is(err, ErrClosed) {
		t.Errorf("Dispatch after Close = %v, want ErrClosed", err)
	}
}

func TestEngineRetriesAndRecovers(t *testing.T) {
	sms := NewSMSGateway(0, 0)
	eng, err := NewEngine(Config{Workers: 1, MaxRetries: 3, Backoff: time.Millisecond}, sms)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.SetRoute("alice", Route{Transport: "sms", Addr: "a"}); err != nil {
		t.Fatal(err)
	}
	sms.FailNext(2) // first two attempts fail, third succeeds
	n := sampleNotification(1)
	n.Subscriber = "alice"
	if err := eng.Dispatch(n); err != nil {
		t.Fatal(err)
	}
	if !eng.Drain(2 * time.Second) {
		t.Fatal("queue did not drain")
	}
	deadline := time.Now().Add(time.Second)
	for len(sms.Messages()) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if len(sms.Messages()) == 0 {
		t.Fatal("notification never delivered despite retries")
	}
	if len(eng.DeadLetters()) != 0 {
		t.Errorf("dead letters = %v", eng.DeadLetters())
	}
	rep := eng.Metrics().Report()
	if !strings.Contains(rep, "attempts_failed.sms") {
		t.Errorf("metrics missing failure counter:\n%s", rep)
	}
}

func TestEngineDeadLetters(t *testing.T) {
	sms := NewSMSGateway(0, 0)
	eng, err := NewEngine(Config{Workers: 1, MaxRetries: 2, Backoff: time.Millisecond}, sms)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.SetRoute("alice", Route{Transport: "sms", Addr: "a"}); err != nil {
		t.Fatal(err)
	}
	sms.FailNext(100)
	n := sampleNotification(9)
	n.Subscriber = "alice"
	if err := eng.Dispatch(n); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(eng.DeadLetters()) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	dead := eng.DeadLetters()
	if len(dead) != 1 {
		t.Fatalf("dead letters = %d, want 1", len(dead))
	}
	if dead[0].Attempts != 3 { // 1 initial + 2 retries
		t.Errorf("Attempts = %d, want 3", dead[0].Attempts)
	}
	if dead[0].Notification.SubID != 9 || dead[0].Err == nil {
		t.Errorf("dead letter = %+v", dead[0])
	}
}

func TestEngineRouteRequired(t *testing.T) {
	eng, err := NewEngine(Config{}, NewSMSGateway(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.Dispatch(sampleNotification(1)); err == nil {
		t.Error("dispatch without route must fail")
	}
	if _, ok := eng.RouteOf("nobody"); ok {
		t.Error("RouteOf(nobody) should be false")
	}
}

func TestEngineQueueFull(t *testing.T) {
	// A gateway that blocks forever stalls the single worker; the
	// 1-slot queue then rejects.
	block := make(chan struct{})
	tr := blockingTransport{block: block}
	eng, err := NewEngine(Config{Workers: 1, QueueSize: 1, MaxRetries: 1}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SetRoute("a", Route{Transport: "block", Addr: "x"}); err != nil {
		t.Fatal(err)
	}
	sawFull := false
	for i := 0; i < 50; i++ {
		n := sampleNotification(1)
		n.Subscriber = "a"
		if err := eng.Dispatch(n); errors.Is(err, ErrQueueFull) {
			sawFull = true
			break
		}
	}
	close(block)
	if !sawFull {
		t.Error("queue never reported full")
	}
	eng.Close()
}

type blockingTransport struct{ block chan struct{} }

func (b blockingTransport) Name() string { return "block" }
func (b blockingTransport) Send(string, Notification) error {
	<-b.block
	return nil
}
func (b blockingTransport) Close() error { return nil }

func TestEngineConfigValidation(t *testing.T) {
	if _, err := NewEngine(Config{}, badNameTransport{}); err == nil {
		t.Error("empty transport name must be rejected")
	}
	if _, err := NewEngine(Config{}, NewSMSGateway(0, 0), NewSMSGateway(0, 0)); err == nil {
		t.Error("duplicate transport must be rejected")
	}
}

type badNameTransport struct{}

func (badNameTransport) Name() string                    { return "" }
func (badNameTransport) Send(string, Notification) error { return nil }
func (badNameTransport) Close() error                    { return nil }

func TestDispatchSequenceNumbers(t *testing.T) {
	sms := NewSMSGateway(0, 0)
	eng, err := NewEngine(Config{Workers: 1}, sms)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.SetRoute("a", Route{Transport: "sms", Addr: "x"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		n := sampleNotification(1)
		n.Subscriber = "a"
		if err := eng.Dispatch(n); err != nil {
			t.Fatal(err)
		}
	}
	if !eng.Drain(2 * time.Second) {
		t.Fatal("no drain")
	}
	payloads := fmt.Sprintf("%v", sms.Reassemble("x"))
	for seq := 1; seq <= 5; seq++ {
		if !strings.Contains(payloads, fmt.Sprintf(`"seq":%d`, seq)) {
			t.Errorf("sequence %d missing from deliveries", seq)
		}
	}
}

func TestDeadLetterListBounded(t *testing.T) {
	sms := NewSMSGateway(0, 0)
	eng, err := NewEngine(Config{Workers: 1, MaxRetries: 0, Backoff: time.Millisecond,
		DeadLetterLimit: 3}, sms)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.SetRoute("alice", Route{Transport: "sms", Addr: "a"}); err != nil {
		t.Fatal(err)
	}
	sms.FailNext(100)
	for i := 1; i <= 7; i++ {
		n := sampleNotification(message.SubID(i))
		n.Subscriber = "alice"
		if err := eng.Dispatch(n); err != nil {
			t.Fatal(err)
		}
	}
	if !eng.Drain(2 * time.Second) {
		t.Fatal("queue did not drain")
	}
	dead := eng.DeadLetters()
	if len(dead) != 3 {
		t.Fatalf("dead letters = %d, want cap of 3", len(dead))
	}
	// Oldest evicted: the survivors are the newest three.
	for i, d := range dead {
		if want := message.SubID(i + 5); d.Notification.SubID != want {
			t.Errorf("dead[%d].SubID = %d, want %d", i, d.Notification.SubID, want)
		}
	}
	st := eng.Stats()
	if st.DeadLettersDropped != 4 || st.DeadLetters != 3 {
		t.Errorf("stats = %+v, want 4 dropped / 3 held", st)
	}
	if rep := eng.Metrics().Report(); !strings.Contains(rep, "dead_dropped") {
		t.Errorf("metrics missing dead_dropped counter:\n%s", rep)
	}
}

func TestDeliveryHookAcksAndParks(t *testing.T) {
	sms := NewSMSGateway(0, 0)
	eng, err := NewEngine(Config{Workers: 1, MaxRetries: 1, Backoff: time.Millisecond}, sms)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.SetRoute("alice", Route{Transport: "sms", Addr: "a"}); err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		seq      uint64
		err      error
		attempts int
	}
	var mu sync.Mutex
	var outcomes []outcome
	eng.SetDeliveryHook(func(n Notification, r Route, err error, attempts int) bool {
		mu.Lock()
		outcomes = append(outcomes, outcome{n.JournalSeq, err, attempts})
		mu.Unlock()
		return n.JournalSeq != 0 // claim durable failures (park in journal)
	})

	ok := sampleNotification(1)
	ok.Subscriber, ok.JournalSeq = "alice", 11
	if err := eng.Dispatch(ok); err != nil {
		t.Fatal(err)
	}
	if !eng.Drain(2 * time.Second) {
		t.Fatal("drain 1")
	}

	sms.FailNext(100)
	durableFail := sampleNotification(2)
	durableFail.Subscriber, durableFail.JournalSeq = "alice", 12
	if err := eng.Dispatch(durableFail); err != nil {
		t.Fatal(err)
	}
	fireForget := sampleNotification(3)
	fireForget.Subscriber = "alice" // JournalSeq 0: hook declines it
	if err := eng.Dispatch(fireForget); err != nil {
		t.Fatal(err)
	}
	if !eng.Drain(2 * time.Second) {
		t.Fatal("drain 2")
	}

	mu.Lock()
	defer mu.Unlock()
	if len(outcomes) != 3 {
		t.Fatalf("hook fired %d times, want 3: %+v", len(outcomes), outcomes)
	}
	if outcomes[0].seq != 11 || outcomes[0].err != nil || outcomes[0].attempts != 1 {
		t.Errorf("success outcome = %+v", outcomes[0])
	}
	if outcomes[1].seq != 12 || outcomes[1].err == nil || outcomes[1].attempts != 2 {
		t.Errorf("durable failure outcome = %+v", outcomes[1])
	}
	if outcomes[2].seq != 0 || outcomes[2].err == nil {
		t.Errorf("fire-and-forget failure outcome = %+v", outcomes[2])
	}
	// The claimed durable failure is parked, not dead-lettered; the
	// declined fire-and-forget one lands in the list as before.
	if dead := eng.DeadLetters(); len(dead) != 1 || dead[0].Notification.SubID != 3 {
		t.Errorf("dead letters = %+v, want only sub 3", dead)
	}
	if st := eng.Stats(); st.Parked != 1 {
		t.Errorf("stats = %+v, want Parked 1", st)
	}
}
