package notify

import (
	"fmt"
	"net"
	"sync"
)

// maxUDPPayload bounds one datagram; notifications larger than this are
// rejected at send time rather than silently truncated.
const maxUDPPayload = 60 * 1024

// UDPTransport delivers one JSON notification per datagram. UDP gives
// the demo its fire-and-forget transport; delivery is best-effort by
// design, so only local errors (encode, oversize, socket) are reported.
type UDPTransport struct {
	mu    sync.Mutex
	conns map[string]*net.UDPConn
}

// NewUDPTransport returns a UDP transport.
func NewUDPTransport() *UDPTransport {
	return &UDPTransport{conns: make(map[string]*net.UDPConn)}
}

// Name implements Transport.
func (t *UDPTransport) Name() string { return "udp" }

// Send implements Transport.
func (t *UDPTransport) Send(addr string, n Notification) error {
	b, err := n.Encode()
	if err != nil {
		return err
	}
	if len(b) > maxUDPPayload {
		return fmt.Errorf("notify/udp: notification of %d bytes exceeds datagram limit %d", len(b), maxUDPPayload)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	conn := t.conns[addr]
	if conn == nil {
		ua, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			return fmt.Errorf("notify/udp: resolve %s: %w", addr, err)
		}
		conn, err = net.DialUDP("udp", nil, ua)
		if err != nil {
			return fmt.Errorf("notify/udp: dial %s: %w", addr, err)
		}
		t.conns[addr] = conn
	}
	if _, err := conn.Write(b); err != nil {
		conn.Close()
		delete(t.conns, addr)
		return fmt.Errorf("notify/udp: write to %s: %w", addr, err)
	}
	return nil
}

// Close implements Transport.
func (t *UDPTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	var firstErr error
	for addr, c := range t.conns {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		delete(t.conns, addr)
	}
	return firstErr
}

// UDPSink receives notifications sent by UDPTransport.
type UDPSink struct {
	conn *net.UDPConn
	wg   sync.WaitGroup
}

// NewUDPSink binds addr and invokes handle per received notification.
func NewUDPSink(addr string, handle func(Notification)) (*UDPSink, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("notify/udp: resolve %s: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("notify/udp: listen %s: %w", addr, err)
	}
	s := &UDPSink{conn: conn}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		buf := make([]byte, maxUDPPayload)
		for {
			n, _, err := conn.ReadFromUDP(buf)
			if err != nil {
				return // socket closed
			}
			if note, err := DecodeNotification(buf[:n]); err == nil {
				handle(note)
			}
		}
	}()
	return s, nil
}

// Addr returns the bound address.
func (s *UDPSink) Addr() string { return s.conn.LocalAddr().String() }

// Close stops the sink.
func (s *UDPSink) Close() error {
	err := s.conn.Close()
	s.wg.Wait()
	return err
}
