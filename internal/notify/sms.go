package notify

import (
	"fmt"
	"sync"
	"time"
)

// segmentSize is the classic GSM short-message payload.
const segmentSize = 160

// SMSMessage is one short message (or message segment) accepted by the
// gateway.
type SMSMessage struct {
	To      string
	Part    int // 1-based segment index
	Parts   int // total segments of the notification
	Payload string
}

// SMSGateway simulates the SMS delivery path of the demonstration setup
// (paper Figure 2 lists SMS among the notification transports). Real
// SMSC access is substituted (DESIGN.md §2) by an in-process gateway
// that preserves the behaviours the engine must handle:
//
//   - 160-character segmentation of long notifications,
//   - a token-bucket rate limit (a saturated SMSC rejects, which the
//     engine's retry/backoff path must absorb),
//   - injectable failures for fault-injection tests.
type SMSGateway struct {
	mu       sync.Mutex
	messages []SMSMessage

	// rate limiting
	capacity int
	tokens   float64
	rate     float64 // tokens per second
	last     time.Time

	// failure injection: fail the next N sends
	failNext int
}

// NewSMSGateway builds a gateway delivering at most ratePerSec message
// segments per second with the given burst capacity. ratePerSec <= 0
// disables limiting.
func NewSMSGateway(ratePerSec float64, burst int) *SMSGateway {
	if burst <= 0 {
		burst = 16
	}
	return &SMSGateway{
		capacity: burst,
		tokens:   float64(burst),
		rate:     ratePerSec,
		last:     time.Now(),
	}
}

// Name implements Transport.
func (g *SMSGateway) Name() string { return "sms" }

// FailNext makes the next n sends fail with a gateway error (fault
// injection for the engine's retry tests).
func (g *SMSGateway) FailNext(n int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.failNext = n
}

// Send implements Transport: the notification is rendered to its JSON
// form and segmented.
func (g *SMSGateway) Send(addr string, n Notification) error {
	b, err := n.Encode()
	if err != nil {
		return err
	}
	text := string(b)
	parts := (len(text) + segmentSize - 1) / segmentSize
	if parts == 0 {
		parts = 1
	}

	g.mu.Lock()
	defer g.mu.Unlock()
	if g.failNext > 0 {
		g.failNext--
		return fmt.Errorf("notify/sms: gateway error (injected)")
	}
	if g.rate > 0 {
		now := time.Now()
		g.tokens += now.Sub(g.last).Seconds() * g.rate
		if g.tokens > float64(g.capacity) {
			g.tokens = float64(g.capacity)
		}
		g.last = now
		if g.tokens < float64(parts) {
			return fmt.Errorf("notify/sms: rate limited (need %d tokens, have %.1f)", parts, g.tokens)
		}
		g.tokens -= float64(parts)
	}
	for i := 0; i < parts; i++ {
		lo := i * segmentSize
		hi := lo + segmentSize
		if hi > len(text) {
			hi = len(text)
		}
		g.messages = append(g.messages, SMSMessage{
			To: addr, Part: i + 1, Parts: parts, Payload: text[lo:hi],
		})
	}
	return nil
}

// Close implements Transport.
func (g *SMSGateway) Close() error { return nil }

// Messages returns a copy of everything delivered so far.
func (g *SMSGateway) Messages() []SMSMessage {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]SMSMessage, len(g.messages))
	copy(out, g.messages)
	return out
}

// Reassemble joins the segments addressed to one recipient back into
// notification payloads, in arrival order.
func (g *SMSGateway) Reassemble(addr string) []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []string
	var cur string
	for _, m := range g.messages {
		if m.To != addr {
			continue
		}
		cur += m.Payload
		if m.Part == m.Parts {
			out = append(out, cur)
			cur = ""
		}
	}
	return out
}
