package message

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNone:   "none",
		KindString: "string",
		KindInt:    "int",
		KindFloat:  "float",
		KindBool:   "bool",
		Kind(99):   "kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestValueConstructorsAndAccessors(t *testing.T) {
	if v := String("x"); v.Kind() != KindString || v.Str() != "x" {
		t.Errorf("String constructor broken: %v", v)
	}
	if v := Int(7); v.Kind() != KindInt || v.IntVal() != 7 {
		t.Errorf("Int constructor broken: %v", v)
	}
	if v := Float(2.5); v.Kind() != KindFloat || v.FloatVal() != 2.5 {
		t.Errorf("Float constructor broken: %v", v)
	}
	if v := Bool(true); v.Kind() != KindBool || !v.BoolVal() {
		t.Errorf("Bool constructor broken: %v", v)
	}
	if v := None(); !v.IsNone() {
		t.Errorf("None constructor broken: %v", v)
	}
}

func TestValueEqualCrossNumeric(t *testing.T) {
	if !Int(4).Equal(Float(4.0)) {
		t.Error("Int(4) should equal Float(4.0)")
	}
	if !Float(4.0).Equal(Int(4)) {
		t.Error("Float(4.0) should equal Int(4)")
	}
	if Int(4).Equal(String("4")) {
		t.Error("Int(4) should not equal String(\"4\")")
	}
	if Int(4).Equal(Int(5)) {
		t.Error("Int(4) should not equal Int(5)")
	}
	if !None().Equal(None()) {
		t.Error("None should equal None")
	}
	if Bool(true).Equal(Bool(false)) {
		t.Error("true should not equal false")
	}
}

func TestValueCompare(t *testing.T) {
	tests := []struct {
		a, b Value
		want int
		ok   bool
	}{
		{Int(1), Int(2), -1, true},
		{Int(2), Int(1), 1, true},
		{Int(2), Int(2), 0, true},
		{Int(1), Float(1.5), -1, true},
		{Float(1.5), Int(1), 1, true},
		{String("a"), String("b"), -1, true},
		{String("b"), String("b"), 0, true},
		{Bool(false), Bool(true), -1, true},
		{Bool(true), Bool(true), 0, true},
		{Bool(true), Bool(false), 1, true},
		{String("a"), Int(1), 0, false},
		{None(), None(), 0, false},
		{Bool(true), Int(1), 0, false},
	}
	for _, tc := range tests {
		got, ok := tc.a.Compare(tc.b)
		if got != tc.want || ok != tc.ok {
			t.Errorf("Compare(%v, %v) = (%d, %v), want (%d, %v)", tc.a, tc.b, got, ok, tc.want, tc.ok)
		}
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{String("hi"), "hi"},
		{Int(-3), "-3"},
		{Float(2.5), "2.5"},
		{Bool(true), "true"},
		{None(), "∅"},
	}
	for _, tc := range cases {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("%#v.String() = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestValueCanonicalCollapsesNumerics(t *testing.T) {
	if Int(4).Canonical() != Float(4).Canonical() {
		t.Error("canonical form of Int(4) and Float(4) should collide (they are Equal)")
	}
	if Int(4).Canonical() == String("4").Canonical() {
		t.Error("canonical form of Int(4) and String(\"4\") must differ")
	}
}

func TestParseValue(t *testing.T) {
	cases := []struct {
		in   string
		want Value
	}{
		{"42", Int(42)},
		{"-7", Int(-7)},
		{"2.5", Float(2.5)},
		{"true", Bool(true)},
		{"false", Bool(false)},
		{"Toronto", String("Toronto")},
		{"", String("")},
		{"1990", Int(1990)},
		{"3e2", Float(300)},
	}
	for _, tc := range cases {
		if got := ParseValue(tc.in); !got.Equal(tc.want) || got.Kind() != tc.want.Kind() {
			t.Errorf("ParseValue(%q) = %v (%s), want %v (%s)", tc.in, got, got.Kind(), tc.want, tc.want.Kind())
		}
	}
}

// randomValue produces an arbitrary Value for property tests.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(4) {
	case 0:
		return String(randomWord(r))
	case 1:
		return Int(int64(r.Intn(200) - 100))
	case 2:
		return Float(float64(r.Intn(2000)-1000) / 4.0)
	default:
		return Bool(r.Intn(2) == 0)
	}
}

func randomWord(r *rand.Rand) string {
	letters := "abcdefgh"
	n := 1 + r.Intn(6)
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[r.Intn(len(letters))]
	}
	return string(b)
}

// Generate implements quick.Generator so Value can be used directly in
// quick.Check properties.
func (Value) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(randomValue(r))
}

func TestQuickEqualReflexive(t *testing.T) {
	prop := func(v Value) bool { return v.Equal(v) }
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickEqualSymmetric(t *testing.T) {
	prop := func(a, b Value) bool { return a.Equal(b) == b.Equal(a) }
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareAntisymmetric(t *testing.T) {
	prop := func(a, b Value) bool {
		ab, ok1 := a.Compare(b)
		ba, ok2 := b.Compare(a)
		if ok1 != ok2 {
			return false
		}
		if !ok1 {
			return true
		}
		return ab == -ba
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareConsistentWithEqual(t *testing.T) {
	prop := func(a, b Value) bool {
		c, ok := a.Compare(b)
		if !ok {
			return true
		}
		return (c == 0) == a.Equal(b)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCanonicalAgreesWithEqual(t *testing.T) {
	prop := func(a, b Value) bool {
		return (a.Canonical() == b.Canonical()) == a.Equal(b)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareTransitive(t *testing.T) {
	prop := func(a, b, c Value) bool {
		ab, ok1 := a.Compare(b)
		bc, ok2 := b.Compare(c)
		ac, ok3 := a.Compare(c)
		if !ok1 || !ok2 || !ok3 {
			return true // incomparable triples carry no obligation
		}
		if ab <= 0 && bc <= 0 && ac > 0 {
			return false
		}
		if ab >= 0 && bc >= 0 && ac < 0 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
