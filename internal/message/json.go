package message

import (
	"encoding/json"
	"fmt"
)

// The wire representation used by the web application and the
// notification transports. Values are encoded as tagged objects so that
// the string "4" and the integer 4 survive a round trip distinctly.

type wireValue struct {
	Kind  string   `json:"kind"`
	Str   *string  `json:"str,omitempty"`
	Int   *int64   `json:"int,omitempty"`
	Float *float64 `json:"float,omitempty"`
	Bool  *bool    `json:"bool,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (v Value) MarshalJSON() ([]byte, error) {
	w := wireValue{Kind: v.kind.String()}
	switch v.kind {
	case KindString:
		s := v.str
		w.Str = &s
	case KindInt:
		n := v.num
		w.Int = &n
	case KindFloat:
		f := v.flt
		w.Float = &f
	case KindBool:
		b := v.b
		w.Bool = &b
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler.
func (v *Value) UnmarshalJSON(data []byte) error {
	var w wireValue
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("message: decoding value: %w", err)
	}
	switch w.Kind {
	case "none", "":
		*v = None()
	case "string":
		if w.Str == nil {
			return fmt.Errorf("message: string value missing payload")
		}
		*v = String(*w.Str)
	case "int":
		if w.Int == nil {
			return fmt.Errorf("message: int value missing payload")
		}
		*v = Int(*w.Int)
	case "float":
		if w.Float == nil {
			return fmt.Errorf("message: float value missing payload")
		}
		*v = Float(*w.Float)
	case "bool":
		if w.Bool == nil {
			return fmt.Errorf("message: bool value missing payload")
		}
		*v = Bool(*w.Bool)
	default:
		return fmt.Errorf("message: unknown value kind %q", w.Kind)
	}
	return nil
}

type wirePair struct {
	Attr string `json:"attr"`
	Val  Value  `json:"val"`
}

type wireEvent struct {
	Pairs []wirePair `json:"pairs"`
}

// MarshalJSON implements json.Marshaler.
func (e Event) MarshalJSON() ([]byte, error) {
	w := wireEvent{Pairs: make([]wirePair, len(e.pairs))}
	for i, p := range e.pairs {
		w.Pairs[i] = wirePair{Attr: p.Attr, Val: p.Val}
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler.
func (e *Event) UnmarshalJSON(data []byte) error {
	var w wireEvent
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("message: decoding event: %w", err)
	}
	e.pairs = make([]Pair, len(w.Pairs))
	for i, p := range w.Pairs {
		e.pairs[i] = Pair{Attr: p.Attr, Val: p.Val}
	}
	return nil
}

type wirePredicate struct {
	Attr string `json:"attr"`
	Op   string `json:"op"`
	Val  Value  `json:"val,omitempty"`
	Hi   Value  `json:"hi,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (p Predicate) MarshalJSON() ([]byte, error) {
	return json.Marshal(wirePredicate{Attr: p.Attr, Op: p.Op.String(), Val: p.Val, Hi: p.Hi})
}

// UnmarshalJSON implements json.Unmarshaler.
func (p *Predicate) UnmarshalJSON(data []byte) error {
	var w wirePredicate
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("message: decoding predicate: %w", err)
	}
	op := ParseOp(w.Op)
	if op == OpInvalid {
		return fmt.Errorf("message: unknown operator %q", w.Op)
	}
	*p = Predicate{Attr: w.Attr, Op: op, Val: w.Val, Hi: w.Hi}
	return nil
}

type wireSubscription struct {
	ID         SubID       `json:"id"`
	Subscriber string      `json:"subscriber,omitempty"`
	Preds      []Predicate `json:"preds"`
}

// MarshalJSON implements json.Marshaler.
func (s Subscription) MarshalJSON() ([]byte, error) {
	return json.Marshal(wireSubscription{ID: s.ID, Subscriber: s.Subscriber, Preds: s.Preds})
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *Subscription) UnmarshalJSON(data []byte) error {
	var w wireSubscription
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("message: decoding subscription: %w", err)
	}
	*s = Subscription{ID: w.ID, Subscriber: w.Subscriber, Preds: w.Preds}
	return nil
}
