package message

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseOpRoundTrip(t *testing.T) {
	ops := []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpPrefix, OpSuffix, OpContains, OpExists, OpNotExists, OpBetween}
	for _, op := range ops {
		if got := ParseOp(op.String()); got != op {
			t.Errorf("ParseOp(%q) = %v, want %v", op.String(), got, op)
		}
	}
	if ParseOp("bogus") != OpInvalid {
		t.Error("ParseOp should reject unknown tokens")
	}
	if ParseOp("==") != OpEq || ParseOp("<>") != OpNe {
		t.Error("ParseOp should accept the alternative spellings == and <>")
	}
}

func TestOpPredicates(t *testing.T) {
	if !OpExists.IsUnary() || !OpNotExists.IsUnary() || OpEq.IsUnary() {
		t.Error("IsUnary misclassifies operators")
	}
	for _, op := range []Op{OpLt, OpLe, OpGt, OpGe, OpBetween} {
		if !op.IsOrdering() {
			t.Errorf("%v should be an ordering operator", op)
		}
	}
	for _, op := range []Op{OpEq, OpNe, OpPrefix, OpExists} {
		if op.IsOrdering() {
			t.Errorf("%v should not be an ordering operator", op)
		}
	}
}

func TestPredicateEval(t *testing.T) {
	tests := []struct {
		name    string
		p       Predicate
		v       Value
		present bool
		want    bool
	}{
		{"eq hit", Pred("a", OpEq, Int(4)), Int(4), true, true},
		{"eq cross-kind numeric", Pred("a", OpEq, Int(4)), Float(4.0), true, true},
		{"eq miss", Pred("a", OpEq, Int(4)), Int(5), true, false},
		{"eq absent", Pred("a", OpEq, Int(4)), None(), false, false},
		{"ne hit", Pred("a", OpNe, Int(4)), Int(5), true, true},
		{"ne kind mismatch is ne", Pred("a", OpNe, Int(4)), String("x"), true, true},
		{"lt hit", Pred("a", OpLt, Int(4)), Int(3), true, true},
		{"lt boundary", Pred("a", OpLt, Int(4)), Int(4), true, false},
		{"le boundary", Pred("a", OpLe, Int(4)), Int(4), true, true},
		{"gt hit", Pred("a", OpGt, Int(4)), Int(5), true, true},
		{"ge boundary", Pred("a", OpGe, Int(4)), Int(4), true, true},
		{"ge hit from paper", Pred("professional experience", OpGe, Int(4)), Int(5), true, true},
		{"ordering incomparable", Pred("a", OpLt, Int(4)), String("z"), true, false},
		{"between inside", Between("a", Int(2), Int(6)), Int(4), true, true},
		{"between lo edge", Between("a", Int(2), Int(6)), Int(2), true, true},
		{"between hi edge", Between("a", Int(2), Int(6)), Int(6), true, true},
		{"between outside", Between("a", Int(2), Int(6)), Int(7), true, false},
		{"prefix hit", Pred("a", OpPrefix, String("To")), String("Toronto"), true, true},
		{"prefix miss", Pred("a", OpPrefix, String("to")), String("Toronto"), true, false},
		{"suffix hit", Pred("a", OpSuffix, String("onto")), String("Toronto"), true, true},
		{"contains hit", Pred("a", OpContains, String("ron")), String("Toronto"), true, true},
		{"contains non-string", Pred("a", OpContains, String("ron")), Int(3), true, false},
		{"exists present", Exists("a"), Int(1), true, true},
		{"exists absent", Exists("a"), None(), false, false},
		{"not-exists absent", Pred("a", OpNotExists, None()), None(), false, true},
		{"not-exists present", Pred("a", OpNotExists, None()), Int(1), true, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.p.Eval(tc.v, tc.present); got != tc.want {
				t.Errorf("%v.Eval(%v, %v) = %v, want %v", tc.p, tc.v, tc.present, got, tc.want)
			}
		})
	}
}

func TestPredicateMatchesEvent(t *testing.T) {
	e := E("school", "Toronto", "degree", "PhD", "job1", "IBM", "job2", "Microsoft")
	if !Pred("school", OpEq, String("Toronto")).Matches(e) {
		t.Error("school = Toronto should match")
	}
	if Pred("university", OpEq, String("Toronto")).Matches(e) {
		t.Error("university = Toronto must not match syntactically (paper §3.1)")
	}
	if !Pred("job2", OpEq, String("Microsoft")).Matches(e) {
		t.Error("second pair should be reachable")
	}
	if !Pred("salary", OpNotExists, None()).Matches(e) {
		t.Error("not-exists should hold for absent attribute")
	}
	// Multi-valued attribute: any instance may satisfy.
	multi := E("skill", "Java", "skill", "COBOL")
	if !Pred("skill", OpEq, String("COBOL")).Matches(multi) {
		t.Error("any instance of a multi-valued attribute may satisfy a predicate")
	}
}

func TestPredicateString(t *testing.T) {
	cases := []struct {
		p    Predicate
		want string
	}{
		{Pred("university", OpEq, String("Toronto")), "(university = Toronto)"},
		{Pred("exp", OpGe, Int(4)), "(exp >= 4)"},
		{Exists("x"), "(x exists)"},
		{Between("y", Int(1), Int(9)), "(y between 1 and 9)"},
	}
	for _, tc := range cases {
		if got := tc.p.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestPredicateValidate(t *testing.T) {
	valid := []Predicate{
		Pred("a", OpEq, Int(1)),
		Pred("a", OpPrefix, String("x")),
		Exists("a"),
		Between("a", Int(1), Int(2)),
	}
	for _, p := range valid {
		if err := p.Validate(); err != nil {
			t.Errorf("Validate(%v) = %v, want nil", p, err)
		}
	}
	invalid := []Predicate{
		{},
		{Attr: "a"},
		Pred("", OpEq, Int(1)),
		Pred("a", OpEq, None()),
		Pred("a", OpPrefix, Int(1)),
		Between("a", Int(5), Int(2)),
		Between("a", String("x"), Int(2)),
		Pred("a", OpLt, None()),
	}
	for _, p := range invalid {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%v) = nil, want error", p)
		}
	}
	if !strings.Contains(Between("a", Int(5), Int(2)).Validate().Error(), "inverted") {
		t.Error("inverted bounds should be reported as such")
	}
}

func TestQuickPredicateCanonicalInjective(t *testing.T) {
	// Two predicates with equal canonical forms must evaluate identically
	// on every value.
	cfg := &quick.Config{MaxCount: 300}
	prop := func(a, b Value, probe Value, opIdx uint8) bool {
		ops := []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
		p1 := Pred("x", ops[int(opIdx)%len(ops)], a)
		p2 := Pred("x", ops[int(opIdx)%len(ops)], b)
		if p1.Canonical() != p2.Canonical() {
			return true
		}
		return p1.Eval(probe, true) == p2.Eval(probe, true)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickBetweenEquivalentToConjunction(t *testing.T) {
	prop := func(v Value, lo, hi int64) bool {
		if lo > hi {
			lo, hi = hi, lo
		}
		between := Between("a", Int(lo), Int(hi)).Eval(v, true)
		conj := Pred("a", OpGe, Int(lo)).Eval(v, true) && Pred("a", OpLe, Int(hi)).Eval(v, true)
		return between == conj
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickExistsComplement(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		v := randomValue(r)
		present := r.Intn(2) == 0
		ex := Exists("a").Eval(v, present)
		nex := Pred("a", OpNotExists, None()).Eval(v, present)
		if ex == nex {
			t.Fatalf("exists and not-exists must be complementary (v=%v present=%v)", v, present)
		}
	}
}
