package message

import (
	"sync"
	"sync/atomic"
)

// Sym is a process-wide interned identifier for a term (attribute name or
// ontology concept). Two equal strings always intern to the same Sym, so
// hot-path term comparisons become integer compares instead of string
// compares. The zero Sym is reserved and never assigned.
type Sym uint32

// NoSym is the zero Sym; Interned returns it for strings that were never
// interned.
const NoSym Sym = 0

// internState is an immutable snapshot of the intern table. Readers load
// it atomically and never block writers. Writers stage new terms in a
// small mutex-guarded delta map and fold it into a fresh snapshot only
// when it reaches a fixed fraction of the snapshot size, so bulk loads
// (a 100k-term ontology) cost O(n) total instead of O(n²) — the naive
// copy-per-insert variant made large ontology loads quadratic. Lookups
// sit on the per-event match path and must not contend: when the delta
// is empty (the steady state — matching never interns), a miss resolves
// without touching the lock.
type internState struct {
	syms  map[string]Sym
	names []string // names[sym-1] == string for sym
}

var (
	internMu   sync.RWMutex // guards internDelta / internDeltaNames
	internSnap atomic.Pointer[internState]

	// Terms interned since the last snapshot merge. internDeltaN mirrors
	// len(internDelta) so readers can skip the RLock when nothing is
	// pending.
	internDelta      = map[string]Sym{}
	internDeltaNames []string
	internDeltaN     atomic.Int32
)

func init() {
	internSnap.Store(&internState{syms: map[string]Sym{}})
}

// InternSym returns the Sym for s, assigning a fresh one on first sight.
// (The name avoids clashing with the per-link wire dictionary type
// Intern, which is a separate, connection-scoped mechanism.)
func InternSym(s string) Sym {
	if sym, ok := internSnap.Load().syms[s]; ok {
		return sym
	}
	internMu.Lock()
	defer internMu.Unlock()
	cur := internSnap.Load()
	if sym, ok := cur.syms[s]; ok {
		return sym
	}
	if sym, ok := internDelta[s]; ok {
		return sym
	}
	sym := Sym(len(cur.names) + len(internDeltaNames) + 1)
	internDelta[s] = sym
	internDeltaNames = append(internDeltaNames, s)
	internDeltaN.Store(int32(len(internDelta)))
	// Fold the delta in once it is a meaningful fraction of the snapshot:
	// geometric growth keeps bulk interning amortized O(1) per term.
	if n := len(internDelta); n >= 64 && 2*n >= len(cur.syms) {
		next := &internState{
			syms:  make(map[string]Sym, len(cur.syms)+n),
			names: make([]string, 0, len(cur.names)+len(internDeltaNames)),
		}
		for k, v := range cur.syms {
			next.syms[k] = v
		}
		for k, v := range internDelta {
			next.syms[k] = v
		}
		next.names = append(append(next.names, cur.names...), internDeltaNames...)
		internSnap.Store(next)
		internDelta = map[string]Sym{}
		internDeltaNames = nil
		internDeltaN.Store(0)
	}
	return sym
}

// Interned returns the Sym previously assigned to s, or (NoSym, false)
// when s was never interned. It never grows the table, which keeps the
// event-side of matching from inflating the table with transient terms.
func Interned(s string) (Sym, bool) {
	if sym, ok := internSnap.Load().syms[s]; ok {
		return sym, true
	}
	if internDeltaN.Load() == 0 {
		// Nothing pending — but a merge may have landed between the two
		// loads, so recheck the (possibly fresher) snapshot.
		sym, ok := internSnap.Load().syms[s]
		return sym, ok
	}
	internMu.RLock()
	defer internMu.RUnlock()
	if sym, ok := internSnap.Load().syms[s]; ok {
		return sym, true
	}
	sym, ok := internDelta[s]
	return sym, ok
}

// SymName returns the string a Sym was assigned for, or "" for NoSym and
// unknown Syms.
func SymName(sym Sym) string {
	if sym == NoSym {
		return ""
	}
	if st := internSnap.Load(); int(sym) <= len(st.names) {
		return st.names[sym-1]
	}
	internMu.RLock()
	defer internMu.RUnlock()
	st := internSnap.Load()
	if int(sym) <= len(st.names) {
		return st.names[sym-1]
	}
	if idx := int(sym) - 1 - len(st.names); idx >= 0 && idx < len(internDeltaNames) {
		return internDeltaNames[idx]
	}
	return ""
}

// InternedTerms reports the current size of the global intern table.
func InternedTerms() int {
	return len(internSnap.Load().syms) + int(internDeltaN.Load())
}
