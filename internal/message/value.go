// Package message defines the data model of S-ToPSS: typed attribute
// values, predicates over attributes, publications (events) and
// subscriptions (conjunctions of predicates).
//
// The model follows the attribute/value-pair scheme of the paper's
// examples, e.g. the publication
//
//	(school, Toronto)(degree, PhD)(graduation year, 1990)
//
// and the subscription
//
//	(university = Toronto) ∧ (degree = PhD) ∧ (professional experience ≥ 4).
//
// Everything in this package is a plain value type: copying an Event or a
// Subscription yields an independent instance, which the semantic stage
// relies on when it derives new events from old ones.
package message

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the dynamic type of a Value.
type Kind uint8

// The supported value kinds. KindNone is the zero value and marks an
// absent Value (used by unary operators such as Exists).
const (
	KindNone Kind = iota
	KindString
	KindInt
	KindFloat
	KindBool
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed attribute value. The zero Value has
// KindNone. Values are immutable; all operations return new Values.
type Value struct {
	kind Kind
	str  string
	num  int64   // int payload
	flt  float64 // float payload
	b    bool
}

// String constructs a string Value.
func String(s string) Value { return Value{kind: KindString, str: s} }

// Int constructs an integer Value.
func Int(i int64) Value { return Value{kind: KindInt, num: i} }

// Float constructs a floating-point Value.
func Float(f float64) Value { return Value{kind: KindFloat, flt: f} }

// Bool constructs a boolean Value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// None is the absent value.
func None() Value { return Value{} }

// Kind reports the dynamic type of v.
func (v Value) Kind() Kind { return v.kind }

// IsNone reports whether v is the absent value.
func (v Value) IsNone() bool { return v.kind == KindNone }

// Str returns the string payload; it is only meaningful for KindString.
func (v Value) Str() string { return v.str }

// IntVal returns the integer payload; only meaningful for KindInt.
func (v Value) IntVal() int64 { return v.num }

// FloatVal returns the float payload; only meaningful for KindFloat.
func (v Value) FloatVal() float64 { return v.flt }

// BoolVal returns the boolean payload; only meaningful for KindBool.
func (v Value) BoolVal() bool { return v.b }

// IsNumeric reports whether v is an int or a float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// AsFloat converts a numeric Value to float64. The second result is false
// when v is not numeric.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.num), true
	case KindFloat:
		return v.flt, true
	default:
		return 0, false
	}
}

// Equal reports semantic equality. Ints and floats compare numerically
// across kinds, so Int(4).Equal(Float(4.0)) is true; this mirrors the
// loose typing of the paper's publication language, where
// "(professional experience, 5)" must satisfy "professional experience ≥ 4"
// regardless of lexical number form.
func (v Value) Equal(o Value) bool {
	if v.IsNumeric() && o.IsNumeric() {
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		return a == b
	}
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindNone:
		return true
	case KindString:
		return v.str == o.str
	case KindBool:
		return v.b == o.b
	default:
		return false
	}
}

// Compare orders two values. The result is (-1, true), (0, true) or
// (1, true) when the values are comparable (both numeric, both strings or
// both bools), and (0, false) otherwise. Booleans order false < true.
func (v Value) Compare(o Value) (int, bool) {
	if v.IsNumeric() && o.IsNumeric() {
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		switch {
		case a < b:
			return -1, true
		case a > b:
			return 1, true
		default:
			return 0, true
		}
	}
	if v.kind != o.kind {
		return 0, false
	}
	switch v.kind {
	case KindString:
		return strings.Compare(v.str, o.str), true
	case KindBool:
		switch {
		case v.b == o.b:
			return 0, true
		case !v.b:
			return -1, true
		default:
			return 1, true
		}
	default:
		return 0, false
	}
}

// String renders the value for humans: strings bare, numbers in decimal,
// booleans as true/false, None as "∅".
func (v Value) String() string {
	switch v.kind {
	case KindNone:
		return "∅"
	case KindString:
		return v.str
	case KindInt:
		return strconv.FormatInt(v.num, 10)
	case KindFloat:
		return strconv.FormatFloat(v.flt, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.b)
	default:
		return "?"
	}
}

// Canonical renders the value unambiguously for use in signatures and
// hash keys: the kind is prefixed so that String("4") and Int(4) differ,
// while Int(4) and Float(4) collapse to the same key (they are Equal).
func (v Value) Canonical() string {
	switch v.kind {
	case KindNone:
		return "n:"
	case KindString:
		return "s:" + v.str
	case KindInt:
		return "f:" + strconv.FormatFloat(float64(v.num), 'g', -1, 64)
	case KindFloat:
		return "f:" + strconv.FormatFloat(v.flt, 'g', -1, 64)
	case KindBool:
		return "b:" + strconv.FormatBool(v.b)
	default:
		return "?"
	}
}

// ParseValue converts an external token into a Value using the same
// inference the web application and the workload generator use: integers
// and floats parse to numeric kinds, "true"/"false" to bool, everything
// else is a string.
func ParseValue(tok string) Value {
	if tok == "" {
		return String("")
	}
	if i, err := strconv.ParseInt(tok, 10, 64); err == nil {
		return Int(i)
	}
	if f, err := strconv.ParseFloat(tok, 64); err == nil && !math.IsInf(f, 0) && !math.IsNaN(f) {
		return Float(f)
	}
	if tok == "true" {
		return Bool(true)
	}
	if tok == "false" {
		return Bool(false)
	}
	return String(tok)
}
