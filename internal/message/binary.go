package message

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary wire codecs for the message types, used by the overlay's
// compact framing (internal/overlay). They exist BESIDE the JSON
// codecs in json.go: JSON remains the interoperable, self-describing
// form (web API, notification transports, old overlay peers); the
// binary form is the hot-path encoding — varint lengths, one kind byte
// per value, and optional string interning so attribute names and
// recurring terms cost one or two bytes after first use.
//
// The two codecs are round-trip equivalent: decode(binary(encode(x)))
// and decode(json(encode(x))) produce identical values for every x
// either accepts (FuzzFrame in internal/overlay pins this cross-codec
// identity).

// internMax bounds an interning table: entries past the cap travel as
// literals forever. 4096 ids × short strings keeps a long-lived link's
// table under ~256 KiB while covering any realistic attribute/term
// vocabulary.
const internMax = 4096

// internMaxLen bounds the length of strings eligible for interning.
// Attribute names, ontology terms and broker names are short;
// arbitrary payload strings past this length are unlikely to repeat
// and would bloat the table.
const internMaxLen = 64

// Intern is a deterministic string-interning table shared by the two
// ends of one byte stream. The sender references previously seen
// strings by id; ids are assigned implicitly in stream order — every
// eligible literal is added by BOTH sides as it is encoded/decoded —
// so the tables converge without any negotiation beyond "interning is
// on". One Intern instance serves exactly one direction of one stream
// and is confined to that direction's encoder or decoder goroutine.
type Intern struct {
	ids  map[string]uint64 // encoder side: string → id
	strs []string          // decoder side (and rollback bookkeeping)
}

// NewIntern creates an empty interning table.
func NewIntern() *Intern {
	return &Intern{ids: make(map[string]uint64)}
}

// eligible reports whether s would be assigned an id when sent as a
// literal. The rule is pure — both stream ends agree on it.
func (in *Intern) eligible(s string) bool {
	return len(s) > 0 && len(s) <= internMaxLen && len(in.strs) < internMax
}

func (in *Intern) add(s string) {
	in.ids[s] = uint64(len(in.strs))
	in.strs = append(in.strs, s)
}

// Mark snapshots the table size so a speculative encode can be undone.
func (in *Intern) Mark() int { return len(in.strs) }

// Rollback removes every id assigned since the matching Mark. The
// overlay uses it when an encoded frame is dropped (oversized) before
// transmission: the peer never sees the literals, so the sender must
// forget the ids they would have claimed or the tables desynchronize.
func (in *Intern) Rollback(mark int) {
	for _, s := range in.strs[mark:] {
		delete(in.ids, s)
	}
	in.strs = in.strs[:mark]
}

// BWriter encodes message values into a reusable byte buffer. The zero
// value is usable (no interning); Buf is exported so callers can reuse
// the backing array across frames (Reset keeps capacity).
type BWriter struct {
	Buf  []byte
	Dict *Intern // optional; nil encodes every string as a literal
}

// Reset truncates the buffer, keeping its capacity.
func (w *BWriter) Reset() { w.Buf = w.Buf[:0] }

// Len reports the number of encoded bytes.
func (w *BWriter) Len() int { return len(w.Buf) }

// Byte appends one raw byte.
func (w *BWriter) Byte(b byte) { w.Buf = append(w.Buf, b) }

// Uvarint appends an unsigned varint.
func (w *BWriter) Uvarint(u uint64) { w.Buf = binary.AppendUvarint(w.Buf, u) }

// Varint appends a signed varint (zigzag).
func (w *BWriter) Varint(v int64) { w.Buf = binary.AppendVarint(w.Buf, v) }

// RawString appends a length-prefixed string, never interned. Use for
// strings that are unique by construction (publication IDs, error
// text): interning them would only churn the table.
func (w *BWriter) RawString(s string) {
	w.Uvarint(uint64(len(s)))
	w.Buf = append(w.Buf, s...)
}

// String appends a string through the interning dictionary: a
// back-reference when the string has been sent before on this stream,
// a literal (which claims the next id) otherwise. The literal/ref
// distinction rides the low bit of the leading varint: odd = id
// reference, even = 2×length literal.
func (w *BWriter) String(s string) {
	if w.Dict != nil {
		if id, ok := w.Dict.ids[s]; ok {
			w.Uvarint(2*id + 1)
			return
		}
		if w.Dict.eligible(s) {
			w.Dict.add(s)
		}
	}
	w.Uvarint(2 * uint64(len(s)))
	w.Buf = append(w.Buf, s...)
}

// Value appends one kind byte plus the kind's payload.
func (w *BWriter) Value(v Value) {
	w.Byte(byte(v.kind))
	switch v.kind {
	case KindString:
		w.String(v.str)
	case KindInt:
		w.Varint(v.num)
	case KindFloat:
		w.Buf = binary.LittleEndian.AppendUint64(w.Buf, math.Float64bits(v.flt))
	case KindBool:
		if v.b {
			w.Byte(1)
		} else {
			w.Byte(0)
		}
	}
}

// Event appends a pair count followed by interned-attribute/value
// pairs.
func (w *BWriter) Event(e Event) {
	w.Uvarint(uint64(len(e.pairs)))
	for _, p := range e.pairs {
		w.String(p.Attr)
		w.Value(p.Val)
	}
}

// Predicate appends attribute, operator and operand(s).
func (w *BWriter) Predicate(p Predicate) {
	w.String(p.Attr)
	w.Byte(byte(p.Op))
	w.Value(p.Val)
	if p.Op == OpBetween {
		w.Value(p.Hi)
	}
}

// Subscription appends id, subscriber and the predicate conjunction.
// The predicate count is shifted by one so a nil slice (0) stays
// distinguishable from an empty one (1): the JSON codec renders them
// differently ("preds":null vs "preds":[]), and the cross-codec
// round-trip guarantee requires the binary form not to collapse them.
func (w *BWriter) Subscription(s Subscription) {
	w.Uvarint(uint64(s.ID))
	w.String(s.Subscriber)
	if s.Preds == nil {
		w.Uvarint(0)
	} else {
		w.Uvarint(uint64(len(s.Preds)) + 1)
	}
	for _, p := range s.Preds {
		w.Predicate(p)
	}
}

// BReader decodes the BWriter encoding from a byte slice. Decoded
// strings are fresh copies, so the input buffer may be reused as soon
// as the decode returns.
type BReader struct {
	buf  []byte
	off  int
	Dict *Intern // must mirror the encoding side's (nil ⇔ nil)
}

// NewBReader wraps data for decoding with the given dictionary.
func NewBReader(data []byte, dict *Intern) *BReader {
	return &BReader{buf: data, Dict: dict}
}

// Len reports the number of undecoded bytes remaining.
func (r *BReader) Len() int { return len(r.buf) - r.off }

// Byte consumes one raw byte.
func (r *BReader) Byte() (byte, error) {
	if r.off >= len(r.buf) {
		return 0, fmt.Errorf("message: binary decode: unexpected end of input")
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

// Uvarint consumes an unsigned varint.
func (r *BReader) Uvarint() (uint64, error) {
	u, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("message: binary decode: bad uvarint")
	}
	r.off += n
	return u, nil
}

// Varint consumes a signed (zigzag) varint.
func (r *BReader) Varint() (int64, error) {
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("message: binary decode: bad varint")
	}
	r.off += n
	return v, nil
}

func (r *BReader) bytes(n uint64) ([]byte, error) {
	if n > uint64(len(r.buf)-r.off) {
		return nil, fmt.Errorf("message: binary decode: string length %d exceeds remaining %d", n, len(r.buf)-r.off)
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

// RawString consumes a length-prefixed string.
func (r *BReader) RawString() (string, error) {
	n, err := r.Uvarint()
	if err != nil {
		return "", err
	}
	b, err := r.bytes(n)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// String consumes an interned string: either a dictionary reference or
// a literal (which is added to the dictionary exactly as the encoder
// added it).
func (r *BReader) String() (string, error) {
	tag, err := r.Uvarint()
	if err != nil {
		return "", err
	}
	if tag&1 == 1 {
		id := tag >> 1
		if r.Dict == nil || id >= uint64(len(r.Dict.strs)) {
			return "", fmt.Errorf("message: binary decode: interned string id %d out of range", id)
		}
		return r.Dict.strs[id], nil
	}
	b, err := r.bytes(tag >> 1)
	if err != nil {
		return "", err
	}
	s := string(b)
	if r.Dict != nil && r.Dict.eligible(s) {
		r.Dict.add(s)
	}
	return s, nil
}

// Value consumes one encoded Value.
func (r *BReader) Value() (Value, error) {
	k, err := r.Byte()
	if err != nil {
		return Value{}, err
	}
	switch Kind(k) {
	case KindNone:
		return None(), nil
	case KindString:
		s, err := r.String()
		if err != nil {
			return Value{}, err
		}
		return String(s), nil
	case KindInt:
		n, err := r.Varint()
		if err != nil {
			return Value{}, err
		}
		return Int(n), nil
	case KindFloat:
		b, err := r.bytes(8)
		if err != nil {
			return Value{}, err
		}
		return Float(math.Float64frombits(binary.LittleEndian.Uint64(b))), nil
	case KindBool:
		b, err := r.Byte()
		if err != nil {
			return Value{}, err
		}
		return Bool(b != 0), nil
	default:
		return Value{}, fmt.Errorf("message: binary decode: unknown value kind %d", k)
	}
}

// Event consumes one encoded Event.
func (r *BReader) Event() (Event, error) {
	n, err := r.Uvarint()
	if err != nil {
		return Event{}, err
	}
	if n > uint64(r.Len()) { // each pair costs ≥2 bytes; cheap bound
		return Event{}, fmt.Errorf("message: binary decode: event pair count %d exceeds input", n)
	}
	e := Event{pairs: make([]Pair, 0, n)}
	for i := uint64(0); i < n; i++ {
		attr, err := r.String()
		if err != nil {
			return Event{}, err
		}
		v, err := r.Value()
		if err != nil {
			return Event{}, err
		}
		e.pairs = append(e.pairs, Pair{Attr: attr, Val: v})
	}
	return e, nil
}

// Predicate consumes one encoded Predicate.
func (r *BReader) Predicate() (Predicate, error) {
	attr, err := r.String()
	if err != nil {
		return Predicate{}, err
	}
	op, err := r.Byte()
	if err != nil {
		return Predicate{}, err
	}
	if opNames[Op(op)] == "" {
		return Predicate{}, fmt.Errorf("message: binary decode: unknown operator %d", op)
	}
	p := Predicate{Attr: attr, Op: Op(op)}
	if p.Val, err = r.Value(); err != nil {
		return Predicate{}, err
	}
	if p.Op == OpBetween {
		if p.Hi, err = r.Value(); err != nil {
			return Predicate{}, err
		}
	}
	return p, nil
}

// Subscription consumes one encoded Subscription.
func (r *BReader) Subscription() (Subscription, error) {
	id, err := r.Uvarint()
	if err != nil {
		return Subscription{}, err
	}
	subscriber, err := r.String()
	if err != nil {
		return Subscription{}, err
	}
	tag, err := r.Uvarint()
	if err != nil {
		return Subscription{}, err
	}
	s := Subscription{ID: SubID(id), Subscriber: subscriber}
	if tag == 0 {
		return s, nil // nil predicate slice
	}
	n := tag - 1
	if n > uint64(r.Len()) {
		return Subscription{}, fmt.Errorf("message: binary decode: predicate count %d exceeds input", n)
	}
	s.Preds = make([]Predicate, 0, n)
	for i := uint64(0); i < n; i++ {
		p, err := r.Predicate()
		if err != nil {
			return Subscription{}, err
		}
		s.Preds = append(s.Preds, p)
	}
	return s, nil
}
