package message

import (
	"fmt"
	"sync"
	"testing"
)

func TestInternStable(t *testing.T) {
	a := InternSym("intern-test-alpha")
	if a == NoSym {
		t.Fatalf("Intern returned NoSym")
	}
	if b := InternSym("intern-test-alpha"); b != a {
		t.Fatalf("Intern not stable: %d then %d", a, b)
	}
	if c := InternSym("intern-test-beta"); c == a {
		t.Fatalf("distinct strings share sym %d", a)
	}
	if got := SymName(a); got != "intern-test-alpha" {
		t.Fatalf("SymName(%d) = %q", a, got)
	}
}

func TestInternedLookupOnly(t *testing.T) {
	before := InternedTerms()
	if sym, ok := Interned("intern-test-never-seen-term"); ok || sym != NoSym {
		t.Fatalf("Interned returned (%d, %v) for unseen term", sym, ok)
	}
	if after := InternedTerms(); after != before {
		t.Fatalf("Interned grew the table: %d -> %d", before, after)
	}
	want := InternSym("intern-test-gamma")
	sym, ok := Interned("intern-test-gamma")
	if !ok || sym != want {
		t.Fatalf("Interned = (%d, %v), want (%d, true)", sym, ok, want)
	}
}

func TestSymNameUnknown(t *testing.T) {
	if got := SymName(NoSym); got != "" {
		t.Fatalf("SymName(NoSym) = %q", got)
	}
	if got := SymName(Sym(1 << 30)); got != "" {
		t.Fatalf("SymName(huge) = %q", got)
	}
}

func TestInternConcurrent(t *testing.T) {
	const workers = 8
	var wg sync.WaitGroup
	syms := make([][]Sym, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			syms[w] = make([]Sym, 64)
			for i := 0; i < 64; i++ {
				syms[w][i] = InternSym(fmt.Sprintf("intern-conc-%d", i))
				Interned("intern-conc-0")
				InternedTerms()
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range syms[0] {
			if syms[w][i] != syms[0][i] {
				t.Fatalf("worker %d term %d: sym %d != %d", w, i, syms[w][i], syms[0][i])
			}
		}
	}
}
