package message

import (
	"fmt"
	"sort"
	"strings"
)

// Pair is one attribute/value element of a publication, e.g.
// ("school", Toronto).
type Pair struct {
	Attr string
	Val  Value
}

// Event is a publication: an ordered multiset of attribute/value pairs.
// The paper's examples allow several pairs with related attributes (job1,
// job2, …) and the semantic stage adds further pairs and variant events,
// so Event deliberately permits duplicate attributes.
//
// Events are value types with copy-on-write behaviour provided by the
// explicit Clone method; mutating methods operate in place.
type Event struct {
	pairs []Pair
}

// NewEvent builds an event from pairs in order.
func NewEvent(pairs ...Pair) Event {
	e := Event{pairs: make([]Pair, len(pairs))}
	copy(e.pairs, pairs)
	return e
}

// E is shorthand used heavily by tests and examples:
// E("school", String("Toronto"), "degree", String("PhD")).
// It panics on an odd argument count or a non-string attribute, which is
// acceptable for its literal-construction role.
func E(kv ...any) Event {
	if len(kv)%2 != 0 {
		panic("message.E: odd number of arguments")
	}
	e := Event{pairs: make([]Pair, 0, len(kv)/2)}
	for i := 0; i < len(kv); i += 2 {
		attr, ok := kv[i].(string)
		if !ok {
			panic(fmt.Sprintf("message.E: attribute %d is %T, want string", i/2, kv[i]))
		}
		var v Value
		switch x := kv[i+1].(type) {
		case Value:
			v = x
		case string:
			v = String(x)
		case int:
			v = Int(int64(x))
		case int64:
			v = Int(x)
		case float64:
			v = Float(x)
		case bool:
			v = Bool(x)
		default:
			panic(fmt.Sprintf("message.E: unsupported value type %T", kv[i+1]))
		}
		e.pairs = append(e.pairs, Pair{Attr: attr, Val: v})
	}
	return e
}

// Len reports the number of attribute/value pairs.
func (e Event) Len() int { return len(e.pairs) }

// Pairs returns the underlying pairs. The slice must not be mutated by
// callers; use Clone for a private copy.
func (e Event) Pairs() []Pair { return e.pairs }

// Pair returns the i-th pair.
func (e Event) Pair(i int) Pair { return e.pairs[i] }

// Has reports whether the event carries attribute attr.
func (e Event) Has(attr string) bool {
	for _, p := range e.pairs {
		if p.Attr == attr {
			return true
		}
	}
	return false
}

// Get returns the first value of attribute attr and whether it is present.
func (e Event) Get(attr string) (Value, bool) {
	for _, p := range e.pairs {
		if p.Attr == attr {
			return p.Val, true
		}
	}
	return None(), false
}

// GetAll returns every value carried for attribute attr, in order.
func (e Event) GetAll(attr string) []Value {
	var vs []Value
	for _, p := range e.pairs {
		if p.Attr == attr {
			vs = append(vs, p.Val)
		}
	}
	return vs
}

// Add appends a pair in place and returns the event for chaining.
func (e *Event) Add(attr string, v Value) *Event {
	e.pairs = append(e.pairs, Pair{Attr: attr, Val: v})
	return e
}

// AddPair appends an existing pair in place.
func (e *Event) AddPair(p Pair) { e.pairs = append(e.pairs, p) }

// AddUnique appends the pair only when an equal (attr, value) pair is not
// already present. It reports whether the pair was added. The semantic
// stage uses it to keep expanded events duplicate-free.
func (e *Event) AddUnique(attr string, v Value) bool {
	for _, p := range e.pairs {
		if p.Attr == attr && p.Val.Equal(v) {
			return false
		}
	}
	e.pairs = append(e.pairs, Pair{Attr: attr, Val: v})
	return true
}

// Clone returns a deep, independent copy of the event.
func (e Event) Clone() Event {
	c := Event{pairs: make([]Pair, len(e.pairs))}
	copy(c.pairs, e.pairs)
	return c
}

// Attrs returns the distinct attribute names of the event, sorted.
func (e Event) Attrs() []string {
	seen := make(map[string]struct{}, len(e.pairs))
	var out []string
	for _, p := range e.pairs {
		if _, dup := seen[p.Attr]; !dup {
			seen[p.Attr] = struct{}{}
			out = append(out, p.Attr)
		}
	}
	sort.Strings(out)
	return out
}

// Equal reports whether two events carry the same multiset of pairs,
// irrespective of order.
func (e Event) Equal(o Event) bool {
	return e.Signature() == o.Signature()
}

// Signature returns a canonical, order-insensitive key identifying the
// event's pair multiset. The semantic stage's fixpoint loop uses
// signatures to deduplicate derived events (DESIGN.md §4).
func (e Event) Signature() string {
	keys := make([]string, len(e.pairs))
	for i, p := range e.pairs {
		keys[i] = p.Attr + "\x1f" + p.Val.Canonical()
	}
	sort.Strings(keys)
	return strings.Join(keys, "\x1e")
}

// String renders the event in the paper's surface syntax:
// (school, Toronto)(degree, PhD).
func (e Event) String() string {
	var sb strings.Builder
	for _, p := range e.pairs {
		fmt.Fprintf(&sb, "(%s, %s)", p.Attr, p.Val)
	}
	return sb.String()
}

// Validate reports whether every pair has a non-empty attribute and a
// non-None value.
func (e Event) Validate() error {
	if len(e.pairs) == 0 {
		return fmt.Errorf("message: event has no pairs")
	}
	for i, p := range e.pairs {
		if p.Attr == "" {
			return fmt.Errorf("message: event pair %d has empty attribute", i)
		}
		if p.Val.IsNone() {
			return fmt.Errorf("message: event pair %d (%s) has no value", i, p.Attr)
		}
	}
	return nil
}
