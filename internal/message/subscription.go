package message

import (
	"fmt"
	"sort"
	"strings"
)

// SubID identifies a subscription inside a matcher. IDs are assigned by
// the broker/engine and are unique for the lifetime of the process.
type SubID uint64

// Subscription is a conjunction of predicates, as in the paper:
//
//	S: (university = Toronto) ∧ (degree = PhD) ∧ (professional experience ≥ 4)
//
// Subscriber carries the opaque identity of the subscribing client so the
// notification engine can route matches.
type Subscription struct {
	ID         SubID
	Subscriber string
	Preds      []Predicate
}

// NewSubscription builds a subscription over the given predicates.
func NewSubscription(id SubID, subscriber string, preds ...Predicate) Subscription {
	s := Subscription{ID: id, Subscriber: subscriber, Preds: make([]Predicate, len(preds))}
	copy(s.Preds, preds)
	return s
}

// Matches reports whether the event satisfies every predicate of the
// subscription. This is the reference (model) semantics that all matcher
// implementations must agree with; the property tests in
// internal/matching check exactly that.
func (s Subscription) Matches(e Event) bool {
	for _, p := range s.Preds {
		if !p.Matches(e) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the subscription.
func (s Subscription) Clone() Subscription {
	c := s
	c.Preds = make([]Predicate, len(s.Preds))
	copy(c.Preds, s.Preds)
	return c
}

// Attrs returns the distinct attribute names constrained by the
// subscription, sorted.
func (s Subscription) Attrs() []string {
	seen := make(map[string]struct{}, len(s.Preds))
	var out []string
	for _, p := range s.Preds {
		if _, dup := seen[p.Attr]; !dup {
			seen[p.Attr] = struct{}{}
			out = append(out, p.Attr)
		}
	}
	sort.Strings(out)
	return out
}

// TouchesTerms reports whether any predicate attribute (or string
// operand) of the subscription is one of the given terms. Engines and
// overlay routing use it against a changed-canonical-term set to
// re-index or re-canonicalize only the subscriptions a knowledge
// update could have altered: raw terms suffice, because a term whose
// canonical form changed appears in forms derived from the OLD
// knowledge exactly as written or under its old root — either way the
// original mentions it.
func (s Subscription) TouchesTerms(terms map[string]bool) bool {
	for _, p := range s.Preds {
		if terms[p.Attr] {
			return true
		}
		if p.Val.Kind() == KindString && terms[p.Val.Str()] {
			return true
		}
	}
	return false
}

// String renders the subscription in the paper's syntax, predicates
// joined by the conjunction sign.
func (s Subscription) String() string {
	parts := make([]string, len(s.Preds))
	for i, p := range s.Preds {
		parts[i] = p.String()
	}
	return strings.Join(parts, " and ")
}

// Canonical returns an order-insensitive signature of the predicate set,
// used to detect duplicate subscriptions.
func (s Subscription) Canonical() string {
	keys := make([]string, len(s.Preds))
	for i, p := range s.Preds {
		keys[i] = p.Canonical()
	}
	sort.Strings(keys)
	return strings.Join(keys, "\x1e")
}

// Validate checks every predicate and rejects empty subscriptions.
func (s Subscription) Validate() error {
	if len(s.Preds) == 0 {
		return fmt.Errorf("message: subscription %d has no predicates", s.ID)
	}
	for _, p := range s.Preds {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("message: subscription %d: %w", s.ID, err)
		}
	}
	return nil
}
