package message

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestBinaryValueRoundTrip(t *testing.T) {
	vals := []Value{
		None(),
		String(""),
		String("Toronto"),
		String(strings.Repeat("x", internMaxLen+1)), // too long to intern
		Int(0),
		Int(-1),
		Int(math.MaxInt64),
		Int(math.MinInt64),
		Float(0),
		Float(-2.5),
		Float(math.Inf(1)),
		Float(math.SmallestNonzeroFloat64),
		Bool(true),
		Bool(false),
	}
	for _, withDict := range []bool{false, true} {
		var w BWriter
		var rd *Intern
		if withDict {
			w.Dict = NewIntern()
			rd = NewIntern()
		}
		for _, v := range vals {
			w.Value(v)
		}
		r := NewBReader(w.Buf, rd)
		for i, want := range vals {
			got, err := r.Value()
			if err != nil {
				t.Fatalf("dict=%v value %d: %v", withDict, i, err)
			}
			if got != want {
				t.Fatalf("dict=%v value %d: got %#v want %#v", withDict, i, got, want)
			}
		}
		if r.Len() != 0 {
			t.Fatalf("dict=%v: %d trailing bytes", withDict, r.Len())
		}
	}
}

func TestBinaryFloatNaN(t *testing.T) {
	var w BWriter
	w.Value(Float(math.NaN()))
	got, err := NewBReader(w.Buf, nil).Value()
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind() != KindFloat || !math.IsNaN(got.FloatVal()) {
		t.Fatalf("NaN did not survive: %#v", got)
	}
}

func TestBinaryInternReusesIDs(t *testing.T) {
	enc := NewIntern()
	var w BWriter
	w.Dict = enc
	w.String("school")
	first := w.Len()
	w.String("school")
	refLen := w.Len() - first
	if refLen >= first {
		t.Fatalf("second occurrence (%d bytes) not shorter than literal (%d bytes)", refLen, first)
	}
	r := NewBReader(w.Buf, NewIntern())
	for i := 0; i < 2; i++ {
		s, err := r.String()
		if err != nil {
			t.Fatal(err)
		}
		if s != "school" {
			t.Fatalf("occurrence %d: got %q", i, s)
		}
	}
}

func TestBinaryInternRollback(t *testing.T) {
	enc := NewIntern()
	var w BWriter
	w.Dict = enc
	w.String("keep")
	mark := enc.Mark()
	w.String("dropped-a")
	w.String("dropped-b")
	enc.Rollback(mark)

	// After rollback the encoder behaves as if the dropped frame never
	// happened: re-encoding from the mark must produce the same bytes a
	// fresh peer-side table would accept.
	w.Buf = w.Buf[:0]
	w.String("keep") // ref
	w.String("next") // literal, takes the id the dropped strings vacated
	dec := NewIntern()
	dec.add("keep")
	r := NewBReader(w.Buf, dec)
	for _, want := range []string{"keep", "next"} {
		got, err := r.String()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("got %q want %q", got, want)
		}
	}
	if id, ok := enc.ids["next"]; !ok || id != 1 {
		t.Fatalf("rollback did not free ids: next=%d ok=%v", id, ok)
	}
	if _, ok := enc.ids["dropped-a"]; ok {
		t.Fatal("rolled-back string still in encoder table")
	}
}

func TestBinaryInternCaps(t *testing.T) {
	enc := NewIntern()
	enc.strs = make([]string, internMax) // simulate full table
	if enc.eligible("fresh") {
		t.Fatal("full table must refuse new entries")
	}
	if enc.eligible("") {
		t.Fatal("empty string must not intern")
	}
}

func TestBinaryEventSubscriptionRoundTrip(t *testing.T) {
	ev := NewEvent(
		Pair{Attr: "school", Val: String("Toronto")},
		Pair{Attr: "degree", Val: String("PhD")},
		Pair{Attr: "graduation year", Val: Int(1990)},
		Pair{Attr: "gpa", Val: Float(3.9)},
		Pair{Attr: "tenured", Val: Bool(false)},
	)
	sub := Subscription{
		ID:         42,
		Subscriber: "client-7",
		Preds: []Predicate{
			Pred("university", OpEq, String("Toronto")),
			Pred("professional experience", OpGe, Int(4)),
			Between("gpa", Float(3), Float(4)),
			Exists("degree"),
		},
	}

	var w BWriter
	w.Dict = NewIntern()
	w.Event(ev)
	w.Subscription(sub)

	r := NewBReader(w.Buf, NewIntern())
	gotEv, err := r.Event()
	if err != nil {
		t.Fatal(err)
	}
	gotSub, err := r.Subscription()
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Fatalf("%d trailing bytes", r.Len())
	}

	// Compare via the JSON codec: it is the reference representation.
	for _, pair := range []struct{ a, b any }{{ev, gotEv}, {sub, gotSub}} {
		aj, _ := json.Marshal(pair.a)
		bj, _ := json.Marshal(pair.b)
		if string(aj) != string(bj) {
			t.Fatalf("round trip mismatch:\n  sent %s\n  got  %s", aj, bj)
		}
	}
}

func TestBinaryDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		buf  []byte
		run  func(r *BReader) error
	}{
		{"empty byte", nil, func(r *BReader) error { _, err := r.Byte(); return err }},
		{"truncated uvarint", []byte{0x80}, func(r *BReader) error { _, err := r.Uvarint(); return err }},
		{"truncated varint", []byte{0x80}, func(r *BReader) error { _, err := r.Varint(); return err }},
		{"string over input", []byte{0x14, 'a'}, func(r *BReader) error { _, err := r.String(); return err }},
		{"rawstring over input", []byte{0x0a, 'a'}, func(r *BReader) error { _, err := r.RawString(); return err }},
		{"dict ref without dict", []byte{0x03}, func(r *BReader) error { _, err := r.String(); return err }},
		{"unknown kind", []byte{0xee}, func(r *BReader) error { _, err := r.Value(); return err }},
		{"truncated float", []byte{byte(KindFloat), 1, 2, 3}, func(r *BReader) error { _, err := r.Value(); return err }},
		{"event count over input", []byte{0xff, 0xff, 0x03}, func(r *BReader) error { _, err := r.Event(); return err }},
		{"unknown op", []byte{0x02, 'a', 0xee}, func(r *BReader) error { _, err := r.Predicate(); return err }},
		{"sub count over input", []byte{0x01, 0x02, 'a', 0xff, 0x7f}, func(r *BReader) error { _, err := r.Subscription(); return err }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.run(NewBReader(tc.buf, nil)); err == nil {
				t.Fatal("want error, got nil")
			}
		})
	}

	t.Run("dict ref out of range", func(t *testing.T) {
		r := NewBReader([]byte{0x05}, NewIntern()) // id 2, empty dict
		if _, err := r.String(); err == nil {
			t.Fatal("want error, got nil")
		}
	})
}

func TestBinaryWriterReset(t *testing.T) {
	var w BWriter
	w.RawString("hello")
	capBefore := cap(w.Buf)
	w.Reset()
	if w.Len() != 0 || cap(w.Buf) != capBefore {
		t.Fatalf("Reset lost capacity: len=%d cap=%d want cap=%d", w.Len(), cap(w.Buf), capBefore)
	}
}
