package message

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// The paper's running example (§1): the subscription and event below must
// NOT match syntactically — making them match is the whole point of the
// semantic stage tested in internal/semantic and internal/core.
func TestPaperSection1ExampleIsSyntacticMiss(t *testing.T) {
	s := NewSubscription(1, "recruiter",
		Pred("university", OpEq, String("Toronto")),
		Pred("degree", OpEq, String("PhD")),
		Pred("professional experience", OpGe, Int(4)),
	)
	e := E(
		"school", "Toronto",
		"degree", "PhD",
		"work experience", true,
		"graduation year", 1990,
	)
	if s.Matches(e) {
		t.Fatal("paper §1: S must not match E under purely syntactic matching")
	}
}

func TestSubscriptionMatchesConjunction(t *testing.T) {
	s := NewSubscription(2, "c",
		Pred("university", OpEq, String("Toronto")),
		Pred("professional experience", OpGe, Int(4)),
	)
	hit := E("university", "Toronto", "professional experience", 5)
	if !s.Matches(hit) {
		t.Error("paper §3.1: event with root attributes should match")
	}
	missOne := E("university", "Toronto", "professional experience", 3)
	if s.Matches(missOne) {
		t.Error("one failing predicate must fail the conjunction")
	}
	missAttr := E("university", "Toronto")
	if s.Matches(missAttr) {
		t.Error("missing attribute must fail the conjunction")
	}
}

func TestSubscriptionAttrs(t *testing.T) {
	s := NewSubscription(3, "c",
		Pred("b", OpEq, Int(1)),
		Pred("a", OpEq, Int(2)),
		Pred("b", OpGt, Int(0)),
	)
	got := s.Attrs()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Attrs = %v", got)
	}
}

func TestSubscriptionString(t *testing.T) {
	s := NewSubscription(4, "c",
		Pred("university", OpEq, String("Toronto")),
		Pred("degree", OpEq, String("PhD")),
	)
	want := "(university = Toronto) and (degree = PhD)"
	if got := s.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestSubscriptionCanonicalOrderInsensitive(t *testing.T) {
	a := NewSubscription(5, "c", Pred("x", OpEq, Int(1)), Pred("y", OpGt, Int(2)))
	b := NewSubscription(6, "d", Pred("y", OpGt, Int(2)), Pred("x", OpEq, Int(1)))
	if a.Canonical() != b.Canonical() {
		t.Error("canonical form must ignore predicate order and identity fields")
	}
	c := NewSubscription(7, "c", Pred("x", OpEq, Int(2)), Pred("y", OpGt, Int(2)))
	if a.Canonical() == c.Canonical() {
		t.Error("different predicates must not collide")
	}
}

func TestSubscriptionCloneIndependence(t *testing.T) {
	s := NewSubscription(8, "c", Pred("x", OpEq, Int(1)))
	c := s.Clone()
	c.Preds[0] = Pred("x", OpEq, Int(2))
	if s.Preds[0].Val.IntVal() != 1 {
		t.Error("mutating a clone must not affect the original")
	}
}

func TestSubscriptionValidate(t *testing.T) {
	if err := NewSubscription(9, "c", Pred("x", OpEq, Int(1))).Validate(); err != nil {
		t.Errorf("valid subscription rejected: %v", err)
	}
	if err := NewSubscription(10, "c").Validate(); err == nil {
		t.Error("empty subscription must be invalid")
	}
	if err := NewSubscription(11, "c", Pred("", OpEq, Int(1))).Validate(); err == nil {
		t.Error("invalid predicate must invalidate the subscription")
	}
}

func TestSubscriptionJSONRoundTrip(t *testing.T) {
	s := NewSubscription(12, "recruiter-7",
		Pred("university", OpEq, String("Toronto")),
		Pred("professional experience", OpGe, Int(4)),
		Between("salary", Int(50), Int(90)),
		Exists("degree"),
	)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Subscription
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.ID != s.ID || back.Subscriber != s.Subscriber {
		t.Errorf("identity fields lost: %+v", back)
	}
	if back.Canonical() != s.Canonical() {
		t.Errorf("predicates lost: %v vs %v", back, s)
	}
}

func TestSubscriptionJSONRejectsBadOp(t *testing.T) {
	var s Subscription
	bad := `{"id":1,"preds":[{"attr":"a","op":"~~","val":{"kind":"int","int":1}}]}`
	if err := json.Unmarshal([]byte(bad), &s); err == nil {
		t.Error("unknown operator should fail decoding")
	}
}

// randomPredicate builds a predicate suited for random matcher workloads.
func randomPredicate(r *rand.Rand) Predicate {
	attr := randomWord(r)
	switch r.Intn(8) {
	case 0:
		return Pred(attr, OpEq, randomValue(r))
	case 1:
		return Pred(attr, OpNe, randomValue(r))
	case 2:
		return Pred(attr, OpLt, Int(int64(r.Intn(100))))
	case 3:
		return Pred(attr, OpGe, Int(int64(r.Intn(100))))
	case 4:
		return Pred(attr, OpPrefix, String(randomWord(r)))
	case 5:
		return Exists(attr)
	case 6:
		lo := int64(r.Intn(50))
		return Between(attr, Int(lo), Int(lo+int64(r.Intn(50))))
	default:
		return Pred(attr, OpContains, String(randomWord(r)))
	}
}

func TestQuickMatchesAgainstBruteForce(t *testing.T) {
	// Subscription.Matches must equal "every predicate has a satisfying
	// pair" computed by an independent double loop.
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		n := 1 + r.Intn(4)
		preds := make([]Predicate, n)
		for j := range preds {
			preds[j] = randomPredicate(r)
		}
		s := NewSubscription(SubID(i), "q", preds...)
		e := randomEvent(r)

		want := true
		for _, p := range preds {
			ok := false
			if p.Op == OpNotExists {
				ok = !e.Has(p.Attr)
			} else {
				for _, pair := range e.Pairs() {
					if pair.Attr == p.Attr && p.Eval(pair.Val, true) {
						ok = true
						break
					}
				}
			}
			if !ok {
				want = false
				break
			}
		}
		if got := s.Matches(e); got != want {
			t.Fatalf("Matches disagreement on %v vs %v: got %v want %v", s, e, got, want)
		}
	}
}

func TestTouchesTerms(t *testing.T) {
	s := NewSubscription(1, "c",
		Pred("position", OpEq, String("developer")),
		Pred("experience", OpGe, Int(4)))
	cases := []struct {
		terms map[string]bool
		want  bool
	}{
		{map[string]bool{"position": true}, true},   // attribute hit
		{map[string]bool{"developer": true}, true},  // string operand hit
		{map[string]bool{"experience": true}, true}, // attr of non-string pred
		{map[string]bool{"4": true}, false},         // non-string operands never match
		{map[string]bool{"salary": true}, false},
		{nil, false},
	}
	for _, c := range cases {
		if got := s.TouchesTerms(c.terms); got != c.want {
			t.Errorf("TouchesTerms(%v) = %v, want %v", c.terms, got, c.want)
		}
	}
}
