package message

import (
	"fmt"
	"strings"
)

// Op enumerates the predicate operators of the subscription language.
type Op uint8

// Supported operators. Exists and NotExists are unary (their Value is
// ignored); Between is the only ternary operator and uses both Value and
// Hi bounds (inclusive).
const (
	OpInvalid   Op = iota
	OpEq           // attr = v
	OpNe           // attr != v
	OpLt           // attr < v
	OpLe           // attr <= v
	OpGt           // attr > v
	OpGe           // attr >= v
	OpPrefix       // attr has-prefix v   (strings)
	OpSuffix       // attr has-suffix v   (strings)
	OpContains     // attr contains v     (strings)
	OpExists       // attr present with any value
	OpNotExists    // attr absent
	OpBetween      // v <= attr <= hi     (numeric)
)

var opNames = map[Op]string{
	OpEq:        "=",
	OpNe:        "!=",
	OpLt:        "<",
	OpLe:        "<=",
	OpGt:        ">",
	OpGe:        ">=",
	OpPrefix:    "prefix",
	OpSuffix:    "suffix",
	OpContains:  "contains",
	OpExists:    "exists",
	OpNotExists: "not-exists",
	OpBetween:   "between",
}

// String returns the surface syntax of the operator.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// ParseOp is the inverse of Op.String. It returns OpInvalid for unknown
// tokens.
func ParseOp(s string) Op {
	switch s {
	case "=", "==":
		return OpEq
	case "!=", "<>":
		return OpNe
	case "<":
		return OpLt
	case "<=":
		return OpLe
	case ">":
		return OpGt
	case ">=":
		return OpGe
	case "prefix":
		return OpPrefix
	case "suffix":
		return OpSuffix
	case "contains":
		return OpContains
	case "exists":
		return OpExists
	case "not-exists":
		return OpNotExists
	case "between":
		return OpBetween
	default:
		return OpInvalid
	}
}

// IsUnary reports whether the operator takes no right-hand value.
func (o Op) IsUnary() bool { return o == OpExists || o == OpNotExists }

// IsOrdering reports whether the operator compares magnitudes and can be
// served by the sorted threshold indexes of the counting matcher.
func (o Op) IsOrdering() bool {
	switch o {
	case OpLt, OpLe, OpGt, OpGe, OpBetween:
		return true
	}
	return false
}

// Predicate is a single constraint over one attribute. A Subscription is
// a conjunction of Predicates. The zero Predicate is invalid.
type Predicate struct {
	Attr string
	Op   Op
	Val  Value
	Hi   Value // upper bound, OpBetween only
}

// Pred is a convenience constructor for binary predicates.
func Pred(attr string, op Op, val Value) Predicate {
	return Predicate{Attr: attr, Op: op, Val: val}
}

// Exists constructs the unary existence predicate.
func Exists(attr string) Predicate { return Predicate{Attr: attr, Op: OpExists} }

// Between constructs the inclusive range predicate lo <= attr <= hi.
func Between(attr string, lo, hi Value) Predicate {
	return Predicate{Attr: attr, Op: OpBetween, Val: lo, Hi: hi}
}

// Eval reports whether the predicate is satisfied by value v of its
// attribute. present distinguishes "attribute carried by the event with
// some value" from "attribute absent" for the unary operators.
func (p Predicate) Eval(v Value, present bool) bool {
	switch p.Op {
	case OpExists:
		return present
	case OpNotExists:
		return !present
	}
	if !present {
		return false
	}
	switch p.Op {
	case OpEq:
		return v.Equal(p.Val)
	case OpNe:
		// Comparable and different: mismatched kinds (string vs int)
		// are treated as not-equal, matching the loose semantics of
		// the publication language.
		return !v.Equal(p.Val)
	case OpLt:
		c, ok := v.Compare(p.Val)
		return ok && c < 0
	case OpLe:
		c, ok := v.Compare(p.Val)
		return ok && c <= 0
	case OpGt:
		c, ok := v.Compare(p.Val)
		return ok && c > 0
	case OpGe:
		c, ok := v.Compare(p.Val)
		return ok && c >= 0
	case OpBetween:
		lo, ok1 := v.Compare(p.Val)
		hi, ok2 := v.Compare(p.Hi)
		return ok1 && ok2 && lo >= 0 && hi <= 0
	case OpPrefix:
		return v.Kind() == KindString && p.Val.Kind() == KindString &&
			strings.HasPrefix(v.Str(), p.Val.Str())
	case OpSuffix:
		return v.Kind() == KindString && p.Val.Kind() == KindString &&
			strings.HasSuffix(v.Str(), p.Val.Str())
	case OpContains:
		return v.Kind() == KindString && p.Val.Kind() == KindString &&
			strings.Contains(v.Str(), p.Val.Str())
	default:
		return false
	}
}

// Matches evaluates the predicate against a whole event: it is satisfied
// if any attribute instance of the event satisfies it (events may carry
// several values for one root attribute after semantic expansion).
func (p Predicate) Matches(e Event) bool {
	if p.Op == OpNotExists {
		return !e.Has(p.Attr)
	}
	for _, pair := range e.pairs {
		if pair.Attr == p.Attr && p.Eval(pair.Val, true) {
			return true
		}
	}
	return false
}

// String renders the predicate in subscription-language syntax.
func (p Predicate) String() string {
	switch {
	case p.Op.IsUnary():
		return fmt.Sprintf("(%s %s)", p.Attr, p.Op)
	case p.Op == OpBetween:
		return fmt.Sprintf("(%s between %s and %s)", p.Attr, p.Val, p.Hi)
	default:
		return fmt.Sprintf("(%s %s %s)", p.Attr, p.Op, p.Val)
	}
}

// Canonical renders the predicate unambiguously for signatures: operator,
// attribute and canonical value forms joined with unit separators.
func (p Predicate) Canonical() string {
	var sb strings.Builder
	sb.WriteString(p.Attr)
	sb.WriteByte(0x1f)
	sb.WriteString(p.Op.String())
	sb.WriteByte(0x1f)
	sb.WriteString(p.Val.Canonical())
	if p.Op == OpBetween {
		sb.WriteByte(0x1f)
		sb.WriteString(p.Hi.Canonical())
	}
	return sb.String()
}

// Validate reports whether the predicate is well formed: a non-empty
// attribute, a known operator, value kinds appropriate for the operator.
func (p Predicate) Validate() error {
	if p.Attr == "" {
		return fmt.Errorf("message: predicate has empty attribute")
	}
	switch p.Op {
	case OpInvalid:
		return fmt.Errorf("message: predicate %q has invalid operator", p.Attr)
	case OpExists, OpNotExists:
		return nil
	case OpPrefix, OpSuffix, OpContains:
		if p.Val.Kind() != KindString {
			return fmt.Errorf("message: %s predicate on %q requires a string value, got %s", p.Op, p.Attr, p.Val.Kind())
		}
	case OpBetween:
		if !p.Val.IsNumeric() || !p.Hi.IsNumeric() {
			return fmt.Errorf("message: between predicate on %q requires numeric bounds", p.Attr)
		}
		lo, _ := p.Val.AsFloat()
		hi, _ := p.Hi.AsFloat()
		if lo > hi {
			return fmt.Errorf("message: between predicate on %q has inverted bounds (%v > %v)", p.Attr, p.Val, p.Hi)
		}
	case OpLt, OpLe, OpGt, OpGe:
		if p.Val.IsNone() {
			return fmt.Errorf("message: ordering predicate on %q has no value", p.Attr)
		}
	case OpEq, OpNe:
		if p.Val.IsNone() {
			return fmt.Errorf("message: equality predicate on %q has no value", p.Attr)
		}
	}
	return nil
}
