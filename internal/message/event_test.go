package message

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEventConstructionAndAccess(t *testing.T) {
	e := NewEvent(Pair{"school", String("Toronto")}, Pair{"year", Int(1990)})
	if e.Len() != 2 {
		t.Fatalf("Len = %d, want 2", e.Len())
	}
	if v, ok := e.Get("school"); !ok || v.Str() != "Toronto" {
		t.Errorf("Get(school) = %v, %v", v, ok)
	}
	if _, ok := e.Get("salary"); ok {
		t.Error("Get of absent attribute should report false")
	}
	if !e.Has("year") || e.Has("nope") {
		t.Error("Has misreports")
	}
	if p := e.Pair(1); p.Attr != "year" {
		t.Errorf("Pair(1) = %v", p)
	}
}

func TestEShorthand(t *testing.T) {
	e := E("a", 1, "b", "x", "c", 2.5, "d", true, "e", int64(9), "f", Int(3))
	want := []Kind{KindInt, KindString, KindFloat, KindBool, KindInt, KindInt}
	for i, k := range want {
		if e.Pair(i).Val.Kind() != k {
			t.Errorf("pair %d kind = %v, want %v", i, e.Pair(i).Val.Kind(), k)
		}
	}

	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("odd args", func() { E("a") })
	mustPanic("non-string attr", func() { E(1, 2) })
	mustPanic("bad value type", func() { E("a", struct{}{}) })
}

func TestEventMultiValued(t *testing.T) {
	e := E("job", "IBM", "job", "Microsoft")
	vs := e.GetAll("job")
	if len(vs) != 2 || vs[0].Str() != "IBM" || vs[1].Str() != "Microsoft" {
		t.Errorf("GetAll = %v", vs)
	}
	if v, _ := e.Get("job"); v.Str() != "IBM" {
		t.Error("Get should return the first instance")
	}
}

func TestEventAddUnique(t *testing.T) {
	e := E("a", 1)
	if !e.AddUnique("a", Int(2)) {
		t.Error("different value should be added")
	}
	if e.AddUnique("a", Int(1)) {
		t.Error("duplicate pair must not be added")
	}
	if e.AddUnique("a", Float(2)) {
		t.Error("numerically equal pair must not be added")
	}
	if e.Len() != 2 {
		t.Errorf("Len = %d, want 2", e.Len())
	}
}

func TestEventCloneIndependence(t *testing.T) {
	e := E("a", 1)
	c := e.Clone()
	c.Add("b", Int(2))
	if e.Has("b") {
		t.Error("mutating a clone must not affect the original")
	}
}

func TestEventSignatureOrderInsensitive(t *testing.T) {
	a := E("x", 1, "y", "two")
	b := E("y", "two", "x", 1)
	if a.Signature() != b.Signature() {
		t.Error("signatures must ignore pair order")
	}
	if !a.Equal(b) {
		t.Error("Equal must ignore pair order")
	}
	c := E("x", 1, "y", "three")
	if a.Equal(c) {
		t.Error("different value multisets must not be Equal")
	}
	// Duplicates count: (a,1)(a,1) differs from (a,1).
	d1 := E("a", 1, "a", 1)
	d2 := E("a", 1)
	if d1.Equal(d2) {
		t.Error("multiset semantics: duplicate pairs are significant")
	}
}

func TestEventAttrsSortedDistinct(t *testing.T) {
	e := E("b", 1, "a", 2, "b", 3)
	got := e.Attrs()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Attrs = %v", got)
	}
}

func TestEventString(t *testing.T) {
	e := E("school", "Toronto", "degree", "PhD")
	if got, want := e.String(), "(school, Toronto)(degree, PhD)"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestEventValidate(t *testing.T) {
	if err := E("a", 1).Validate(); err != nil {
		t.Errorf("valid event rejected: %v", err)
	}
	if err := (Event{}).Validate(); err == nil {
		t.Error("empty event must be invalid")
	}
	bad := NewEvent(Pair{"", Int(1)})
	if err := bad.Validate(); err == nil {
		t.Error("empty attribute must be invalid")
	}
	bad2 := NewEvent(Pair{"a", None()})
	if err := bad2.Validate(); err == nil {
		t.Error("none value must be invalid")
	}
}

func randomEvent(r *rand.Rand) Event {
	n := 1 + r.Intn(6)
	e := Event{}
	for i := 0; i < n; i++ {
		e.Add(randomWord(r), randomValue(r))
	}
	return e
}

func TestQuickSignatureStableUnderShuffle(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		e := randomEvent(r)
		sig := e.Signature()
		shuffled := e.Clone()
		r.Shuffle(shuffled.Len(), func(i, j int) {
			shuffled.pairs[i], shuffled.pairs[j] = shuffled.pairs[j], shuffled.pairs[i]
		})
		if shuffled.Signature() != sig {
			t.Fatalf("signature changed under shuffle: %v vs %v", e, shuffled)
		}
	}
}

func TestQuickJSONRoundTripEvent(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 200; i++ {
		e := randomEvent(r)
		data, err := json.Marshal(e)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var back Event
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if !e.Equal(back) {
			t.Fatalf("round trip changed event: %v -> %v", e, back)
		}
		// Kinds must survive exactly, not just Equal-collapse.
		for j := 0; j < e.Len(); j++ {
			if e.Pair(j).Val.Kind() != back.Pair(j).Val.Kind() {
				t.Fatalf("kind lost in round trip at pair %d: %v vs %v", j, e.Pair(j).Val.Kind(), back.Pair(j).Val.Kind())
			}
		}
	}
}

func TestQuickValueJSONRoundTrip(t *testing.T) {
	prop := func(v Value) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		var back Value
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		return v.Equal(back) && v.Kind() == back.Kind()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestValueJSONRejectsGarbage(t *testing.T) {
	var v Value
	for _, bad := range []string{
		`{"kind":"string"}`,
		`{"kind":"int"}`,
		`{"kind":"float"}`,
		`{"kind":"bool"}`,
		`{"kind":"martian","str":"x"}`,
		`[1,2]`,
	} {
		if err := json.Unmarshal([]byte(bad), &v); err == nil {
			t.Errorf("Unmarshal(%s) should fail", bad)
		}
	}
	if err := json.Unmarshal([]byte(`{"kind":"none"}`), &v); err != nil || !v.IsNone() {
		t.Errorf("none value should decode: %v %v", v, err)
	}
}
