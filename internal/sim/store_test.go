package sim

import (
	"testing"

	"stopss/internal/broker"
	"stopss/internal/notify"
	"stopss/internal/store"
)

// tinyStore is a store template small enough that a handful of
// detached subscriptions overflows the buffer pool: scenarios under it
// exercise eviction, write-back and read-through faulting, not just
// the happy path.
func tinyStore() store.Config {
	return store.Config{PageSize: 512, Pages: 2}
}

// TestStoreDetachResumeUnderEviction: many durable subscriptions are
// paged out through a two-page pool, publications flow while they are
// detached, and every one of them must be made whole after resume —
// with the store provably evicting and writing back along the way.
func TestStoreDetachResumeUnderEviction(t *testing.T) {
	c := NewCluster(t, 2, WithStore(tinyStore()))
	c.Wire([][2]int{{0, 1}})

	const nsubs = 40
	subs := make([]*Sub, nsubs)
	for i := range subs {
		subs[i] = c.SubscribeDurable(1, ge("x", 0))
	}
	c.Settle()

	// A delivered-and-acked prefix, so detach cursors are non-zero.
	for i := 1; i <= 3; i++ {
		c.Publish(0, "x", i)
	}
	c.Settle()

	for _, s := range subs {
		c.Detach(s)
	}
	st := c.Brokers[1].B.Stats()
	if st.Detached != nsubs || st.Durable != 0 {
		t.Fatalf("after detach: Detached=%d Durable=%d", st.Detached, st.Durable)
	}
	if st.Store.Resident > st.Store.PoolCapacity {
		t.Fatalf("store resident %d exceeds pool budget %d", st.Store.Resident, st.Store.PoolCapacity)
	}
	if st.Store.Evictions == 0 || st.Store.WriteBacks == 0 {
		t.Fatalf("pool never under pressure: %+v", st.Store)
	}

	// The owed stream: journaled while every subscriber is paged out.
	for i := 4; i <= 10; i++ {
		c.Publish(0, "x", i)
	}
	c.Settle()

	for _, s := range subs {
		c.Resume(s)
	}
	c.Settle()
	if dups := c.VerifyAtLeastOnce(); dups != 0 {
		t.Errorf("duplicates = %d, want 0 (no crash in this scenario)", dups)
	}
	st = c.Brokers[1].B.Stats()
	if st.Detached != 0 || st.Durable != nsubs {
		t.Fatalf("after resume: Detached=%d Durable=%d", st.Detached, st.Durable)
	}
	if st.FaultedIn != nsubs {
		t.Fatalf("FaultedIn = %d, want %d", st.FaultedIn, nsubs)
	}
}

// TestStoreCrashRestartDetachedResume: a detached subscription must
// survive a full process crash — the broker restarts from an EMPTY
// snapshot, so the paged store is the only authority that remembers
// it. Publications are local to the subscriber's broker (a detached
// subscription's overlay interests do not survive a restart's link
// re-sync; see ROADMAP).
func TestStoreCrashRestartDetachedResume(t *testing.T) {
	c := NewCluster(t, 1, WithStore(tinyStore()))
	c.SnapshotNow(0) // pre-subscription image: restore knows nothing

	s := c.SubscribeDurable(0, ge("x", 0))
	for i := 1; i <= 4; i++ {
		c.Publish(0, "x", i)
	}
	c.Settle()

	c.Detach(s)
	c.CheckpointStore(0) // make the detach crash-durable
	for i := 5; i <= 9; i++ {
		c.Publish(0, "x", i) // owed: journaled while paged out
	}
	c.Settle()

	c.CrashRestart(0)
	st := c.Brokers[0].B.Stats()
	if st.Detached != 1 || st.Durable != 0 {
		t.Fatalf("after restart: Detached=%d Durable=%d (store did not survive)", st.Detached, st.Durable)
	}

	// The pre-subscription snapshot carries no client routes; the
	// reconnecting subscriber re-registers before resuming, as a real
	// client library would.
	if err := c.Brokers[0].B.Register(broker.Client{Name: s.Client,
		Route: notify.Route{Transport: "sim", Addr: s.Client}}); err != nil {
		t.Fatal(err)
	}
	c.Resume(s)
	c.Settle()
	c.VerifyAtLeastOnce() // gaps are fatal; dups allowed across the crash
	if cur, ok := c.Brokers[0].B.DurableCursor(s.ID); !ok || cur < 9 {
		t.Errorf("cursor after resume = %d/%v, want >= 9", cur, ok)
	}

	// The stream continues, and new subscriptions never collide with
	// the ID the store preserved.
	s2 := c.SubscribeDurable(0, ge("x", 0))
	if s2.ID <= s.ID {
		t.Fatalf("post-restart sub ID %d collides with stored ID space (max %d)", s2.ID, s.ID)
	}
	c.Publish(0, "x", 10)
	c.Settle()
	c.VerifyAtLeastOnce()
}

// TestStoreCrashRestartSnapshotMerge: a subscription snapshotted while
// resident and detached afterwards restores through the 3-way cursor
// merge — the store's (newer) cursor wins over the snapshot's stale
// one, the record is absorbed, and replay owes exactly the tail.
func TestStoreCrashRestartSnapshotMerge(t *testing.T) {
	c := NewCluster(t, 1, WithStore(tinyStore()))

	s := c.SubscribeDurable(0, ge("x", 0))
	c.SnapshotNow(0) // cursor 0 in the snapshot
	for i := 1; i <= 6; i++ {
		c.Publish(0, "x", i)
	}
	c.Settle() // acked through 6

	c.Detach(s) // store cursor 6
	c.CheckpointStore(0)
	for i := 7; i <= 9; i++ {
		c.Publish(0, "x", i)
	}
	c.Settle()

	c.CrashRestart(0)
	// Restore saw the snapshot's resident copy AND the store record:
	// the record is absorbed into residency at the merged cursor.
	st := c.Brokers[0].B.Stats()
	if st.Detached != 0 || st.Durable != 1 {
		t.Fatalf("after restart: Detached=%d Durable=%d (store record not absorbed)", st.Detached, st.Durable)
	}
	if cur, ok := c.Brokers[0].B.DurableCursor(s.ID); !ok || cur < 6 {
		t.Fatalf("restored cursor = %d/%v, want >= 6 (store cursor lost)", cur, ok)
	}
	c.Settle() // catch-up replay of 7..9 drains
	c.VerifyAtLeastOnce()
	for seq := 7; seq <= 9; seq++ {
		if got := c.Brokers[0].rec.count(s.Client, s.ID, seq); got == 0 {
			t.Errorf("owed pub %d never delivered after restart", seq)
		}
	}
}
