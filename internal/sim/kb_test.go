package sim

import (
	"fmt"
	"testing"

	"stopss/internal/knowledge"
	"stopss/internal/message"
)

func eq(attr, val string) message.Predicate {
	return message.Pred(attr, message.OpEq, message.String(val))
}

func synDelta(root string, terms ...string) knowledge.Delta {
	return knowledge.Delta{Op: knowledge.OpAddSynonym, Root: root, Terms: terms}
}

// TestKBConvergenceAfterPartition is the acceptance scenario of the
// knowledge subsystem: a 4-broker line is partitioned, the two sides
// receive disjoint ontology updates, and after healing every broker
// must hold the identical KB version and expand probe events to
// byte-identical derived sets; a probe workload phrased in the new
// terms must then be delivered exactly once, including to
// subscriptions that were created — and replicated — BEFORE the
// knowledge existed (exercising live re-indexing of engines and
// re-canonicalization of overlay routing state on every broker).
func TestKBConvergenceAfterPartition(t *testing.T) {
	c := NewCluster(t, 4)
	c.Wire(Line(4))

	// Subscriptions predate all knowledge. subPos (on b0) is written in
	// the future canonical term; subPay (on b2) is written in a term
	// that a later delta turns into a synonym member, so its indexed
	// and routed forms must change underneath it.
	subPos := c.Subscribe(0, eq("position", "dev"))
	subPay := c.Subscribe(2, eq("pay", "high"))
	c.Settle()

	// Partition {b0,b1} | {b2,b3} and evolve the sides divergently.
	c.Partition(0, 1)
	repA := c.InjectKB(0, synDelta("position", "job"))
	if !repA.Applied || repA.Rejected {
		t.Fatalf("side A delta: %+v", repA)
	}
	c.InjectKB(0, knowledge.Delta{Op: knowledge.OpAddMapping, Map: &knowledge.MapDecl{
		Name: "mainframe", Attr: "position", Match: message.String("mainframe developer"),
		Derived: []knowledge.DerivedPair{{Attr: "skill", Val: message.String("COBOL")}},
	}})
	c.InjectKB(3, synDelta("salary", "pay"))
	c.InjectKB(3, knowledge.Delta{Op: knowledge.OpAddIsA, Child: "sedan", Parent: "car"})
	c.Settle()

	// Sides agree internally but differ across the cut.
	v := c.KBVersions()
	if v[0].Digest != v[1].Digest || v[2].Digest != v[3].Digest {
		t.Fatalf("intra-side divergence: %+v", v)
	}
	if v[1].Digest == v[2].Digest {
		t.Fatalf("sides did not diverge across the partition: %+v", v)
	}

	// Heal: link sync replays each side's log across the cut; dedup
	// absorbs the echoes.
	c.Heal()
	c.VerifyKBConverged(
		message.E("job", "dev"),
		message.E("pay", "high"),
		message.E("position", "mainframe developer"),
		message.E("sedan", "s1"),
	)
	if t.Failed() {
		t.FailNow()
	}

	// Probe workload in post-convergence terms, published from brokers
	// that learned those terms on the OTHER side of the healed cut.
	// A "job" event from side B reaches the position subscription on
	// side A; a "salary" event from side A reaches the subscription
	// written as "pay" on side B (re-indexed to its new canonical form
	// on every broker, and re-canonicalized in every routing table).
	c.PublishExpect(3, []*Sub{subPos}, "job", "dev")
	c.PublishExpect(0, []*Sub{subPay}, "salary", "high")
	c.Settle()
	c.VerifyExactlyOnce()
}

// TestKBRejoinFromSnapshotEquivalent: a broker whose overlay node
// crashes keeps its knowledge base (like a broker restarting from a
// snapshot); on rejoin, link sync replays both logs and the rejoined
// broker converges without duplicating deltas it already holds.
func TestKBCrashRejoinConvergence(t *testing.T) {
	c := NewCluster(t, 3)
	c.Wire(Line(3))

	sub := c.Subscribe(2, eq("position", "dev"))
	c.Settle()

	c.InjectKB(0, synDelta("position", "job"))
	c.Settle()
	c.VerifyKBConverged(message.E("job", "dev"))

	c.Crash(1)
	// New knowledge floods while b1 is down; b0 and b2 are partitioned
	// by b1's absence (line topology), so only b0 learns it.
	c.InjectKB(0, synDelta("salary", "pay"))
	c.Settle()
	if c.Brokers[1].KB.Version().Deltas != 1 {
		t.Fatalf("crashed broker's base changed: %+v", c.Brokers[1].KB.Version())
	}

	c.Rejoin(1)
	c.VerifyKBConverged(message.E("job", "dev"), message.E("pay", "x"))
	if t.Failed() {
		t.FailNow()
	}
	if got := c.Brokers[0].KB.Version().Deltas; got != 2 {
		t.Fatalf("b0 deltas = %d, want 2", got)
	}

	// End to end: a publication in synonym terms from b0 still reaches
	// the subscription on b2 through the rejoined middle broker.
	c.PublishExpect(0, []*Sub{sub}, "job", "dev")
	c.Settle()
	c.VerifyExactlyOnce()
}

// TestKBConcurrentInjection: deltas injected concurrently at every
// broker (distinct origins) converge regardless of flood interleaving.
func TestKBConcurrentInjection(t *testing.T) {
	c := NewCluster(t, 4)
	c.Wire(Mesh(4, 2, 99))

	roots := []string{"alpha", "beta", "gamma", "delta"}
	for i := range c.Brokers {
		c.InjectKB(i, synDelta(roots[i], roots[i]+"1", roots[i]+"2"))
	}
	c.Settle()
	c.VerifyKBConverged(
		message.E("alpha1", "x"),
		message.E("beta2", "y"),
		message.E("gamma1", "z"),
		message.E("delta2", "w"),
	)
	want := c.Brokers[0].KB.Version()
	if want.Deltas != 4 {
		t.Fatalf("deltas = %d, want 4", want.Deltas)
	}
}

// TestKBTwoOriginConcurrentNoFullReindex is the acceptance scenario of
// the bounded multi-origin convergence path: two brokers inject
// interleaved delta streams with no settling in between, so nearly
// every remote arrival is out of merge order. Convergence must be
// digest-equal with ZERO full matcher re-indexes anywhere — refolds
// report the exact changed-term set, so each engine re-indexes exactly
// the one local subscription a delta touches.
func TestKBTwoOriginConcurrentNoFullReindex(t *testing.T) {
	c := NewCluster(t, 2)
	c.Wire(Line(2))

	// Each broker's subscription is phrased in a term the OTHER broker
	// later roots — its re-index is triggered by a remote delta.
	sub0 := c.Subscribe(0, eq("t1", "v"))
	sub1 := c.Subscribe(1, eq("t0", "v"))
	c.Settle()

	const rounds = 8
	for r := 0; r < rounds; r++ {
		for i := 0; i < 2; i++ {
			term := fmt.Sprintf("t%dr%d", i, r)
			if r == 2 {
				term = fmt.Sprintf("t%d", i) // the round that touches the subs
			}
			rep := c.InjectKB(i, synDelta(fmt.Sprintf("root%d", i), term))
			if !rep.Applied || rep.Rejected || rep.FullReindex {
				t.Fatalf("inject r%d at %d: %+v", r, i, rep)
			}
		}
	}
	c.Settle()
	c.VerifyKBConverged(
		message.E("t0", "x"),
		message.E("t1", "y"),
		message.E("t0r7", "z"),
	)
	if t.Failed() {
		t.FailNow()
	}

	for i, b := range c.Brokers {
		v := b.KB.Version()
		if v.Deltas != 2*rounds {
			t.Fatalf("broker %d holds %d deltas, want %d", i, v.Deltas, 2*rounds)
		}
		st := b.B.Engine().Stats()
		if st.KBFullReindexes != 0 {
			t.Errorf("broker %d fell back to %d full re-indexes", i, st.KBFullReindexes)
		}
		// Exactly one delta roots the term the local subscription
		// mentions; every other delta (and every refold) must leave the
		// matcher untouched.
		if st.KBReindexed != 1 {
			t.Errorf("broker %d re-indexed %d subscriptions, want 1", i, st.KBReindexed)
		}
	}

	// Publications phrased in one origin's synonym members reach the
	// subscription indexed under the other origin's knowledge.
	c.PublishExpect(0, []*Sub{sub1}, "t0r5", "v")
	c.PublishExpect(1, []*Sub{sub0}, "t1r3", "v")
	c.Settle()
	c.VerifyExactlyOnce()
}

// TestKBMultiOriginConcurrentBounded scales the scenario to four
// origins on a mesh: interleaved injection from every broker, no
// settling, convergence digest-equal, re-index count bounded by the
// subscriptions actually touched (one per broker), and zero full
// re-indexes federation-wide.
func TestKBMultiOriginConcurrentBounded(t *testing.T) {
	c := NewCluster(t, 4)
	c.Wire(Mesh(4, 2, 99))

	subs := make([]*Sub, 4)
	for i := range c.Brokers {
		subs[i] = c.Subscribe(i, eq(fmt.Sprintf("t%d", (i+1)%4), "v"))
	}
	c.Settle()

	const rounds = 5
	for r := 0; r < rounds; r++ {
		for i := range c.Brokers {
			term := fmt.Sprintf("t%dr%d", i, r)
			if r == 2 {
				term = fmt.Sprintf("t%d", i)
			}
			c.InjectKB(i, synDelta(fmt.Sprintf("root%d", i), term))
		}
	}
	c.Settle()
	c.VerifyKBConverged(
		message.E("t0", "a"),
		message.E("t1r0", "b"),
		message.E("t2r4", "c"),
		message.E("t3", "d"),
	)
	if t.Failed() {
		t.FailNow()
	}

	for i, b := range c.Brokers {
		if v := b.KB.Version(); v.Deltas != 4*rounds {
			t.Fatalf("broker %d holds %d deltas, want %d", i, v.Deltas, 4*rounds)
		}
		st := b.B.Engine().Stats()
		if st.KBFullReindexes != 0 {
			t.Errorf("broker %d fell back to %d full re-indexes", i, st.KBFullReindexes)
		}
		if st.KBReindexed != 1 {
			t.Errorf("broker %d re-indexed %d subscriptions, want 1", i, st.KBReindexed)
		}
	}

	// Cross-mesh probes: each subscription hears a synonym of its term
	// published from the broker two hops around the ring.
	for i := range c.Brokers {
		j := (i + 1) % 4
		c.PublishExpect((i+2)%4, []*Sub{subs[i]}, fmt.Sprintf("t%dr4", j), "v")
	}
	c.Settle()
	c.VerifyExactlyOnce()
}
