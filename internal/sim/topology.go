package sim

import "math/rand"

// Line returns the edges of a path b0—b1—…—b(n-1).
func Line(n int) [][2]int {
	var edges [][2]int
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{i - 1, i})
	}
	return edges
}

// Ring returns a cycle over n brokers — the smallest topology with
// redundant paths, exercising duplicate suppression.
func Ring(n int) [][2]int {
	edges := Line(n)
	if n > 2 {
		edges = append(edges, [2]int{0, n - 1})
	}
	return edges
}

// Star returns a hub-and-spoke topology with broker 0 as the hub.
func Star(n int) [][2]int {
	var edges [][2]int
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{0, i})
	}
	return edges
}

// Mesh returns a connected random topology: a random spanning tree
// (guaranteeing connectivity) plus extra random chords (creating
// cycles). Deterministic for a given seed.
func Mesh(n, extra int, seed int64) [][2]int {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	have := make(map[[2]int]bool)
	var edges [][2]int
	add := func(i, j int) {
		e := edge(i, j)
		if i != j && !have[e] {
			have[e] = true
			edges = append(edges, e)
		}
	}
	for k := 1; k < n; k++ {
		add(perm[k], perm[rng.Intn(k)])
	}
	budget := 20 * extra // fixed up front: the bound must not shrink as chords land
	for attempts := 0; extra > 0 && attempts < budget; attempts++ {
		before := len(edges)
		add(rng.Intn(n), rng.Intn(n))
		if len(edges) > before {
			extra--
		}
	}
	return edges
}
