package sim

import (
	"testing"

	"stopss/internal/message"
)

// TestLinkCrashMidBurstSettles is the regression test for the
// quiescence wedge: a link dying while its writer holds a partially
// flushed batch (and more frames sit in the outbound queue) used to
// strand a positive inflight count forever — Node.Pending never
// returned to zero and Settle hung until its deadline. The writer must
// settle its batch on every exit and Pending must ignore frames
// stranded behind a closed link.
func TestLinkCrashMidBurstSettles(t *testing.T) {
	c := NewCluster(t, 2)
	c.Wire([][2]int{{0, 1}})
	c.Subscribe(1, ge("x", 0))
	c.Settle()

	// Sanity: the route works before the fault.
	c.Publish(0, "x", 1)
	c.Settle()
	c.VerifyExactlyOnce()

	// Stall the b00→b01 direction so b00's writer blocks mid-flush with
	// a batch in hand, then pile a burst of matching publications into
	// the outbound queue behind it.
	c.Net.Stall("b00", "b01", true)
	for i := 0; i < 50; i++ {
		// Publish directly (untracked): these deliveries die with the
		// link by design, so they must not enter the expected sets.
		if _, err := c.Brokers[0].B.Publish(message.E("x", i+10)); err != nil {
			t.Fatal(err)
		}
	}

	// Kill the receiving broker. The severed pipe wakes b00's blocked
	// writer with a write error while inflight > 0; Crash settles
	// internally, so a stranded count would hang right here.
	c.Crash(1)
	c.Net.Stall("b00", "b01", false)
	c.Settle()
	if p := c.Brokers[0].Node.Pending(); p != 0 {
		t.Fatalf("b00 still reports %d pending frames after the link died mid-burst", p)
	}

	// The survivor keeps working: rejoin and deliver again.
	c.Rejoin(1)
	c.Publish(0, "x", 2)
	c.Settle()
	c.VerifyExactlyOnce()
}
