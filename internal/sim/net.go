// Package sim is a deterministic multi-broker simulation harness for
// the overlay (internal/overlay): an in-process, channel-based
// implementation of overlay.Transport plus a cluster harness that
// builds arbitrary topologies (line, ring, star, random mesh), injects
// faults (link cut, partition, broker crash and rejoin, stalled links
// that exercise the bounded write queue), and asserts end-to-end
// routing invariants — above all that every matching subscriber
// receives each publication exactly once.
//
// The harness is clock-free: instead of sleeping and hoping the
// network has settled, Cluster.Settle detects quiescence structurally.
// The fabric knows how many bytes are buffered on every stream and
// whether each stream's reader is parked waiting for input; the
// overlay contributes Node.Pending, which counts frames accepted for
// transmission but not yet flushed. When no stream holds bytes, every
// reader is parked and no node holds pending frames, nothing is in
// flight anywhere — the overlay has converged and invariants can be
// asserted. No assertion depends on a timer ever being "long enough".
package sim

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"stopss/internal/overlay"
)

// Network is an in-process transport fabric. Hosts obtained from it
// exchange bytes through buffered in-memory pipes; the Network tracks
// every stream so it can report global quiescence and inject faults.
type Network struct {
	mu        sync.Mutex
	listeners map[string]*listener
	pipes     []*pipe
	// blocked, when set, cuts links between endpoint pairs for which it
	// returns true (applied symmetrically). Dials between blocked pairs
	// fail; SetLinkFilter also severs existing pipes.
	blocked func(a, b string) bool
}

// NewNetwork creates an empty fabric.
func NewNetwork() *Network {
	return &Network{listeners: make(map[string]*listener)}
}

// Host returns a Transport whose dials originate from the named host.
// Endpoint names label every stream, which is what lets partitions and
// per-link faults target "the link between a and b".
func (n *Network) Host(name string) overlay.Transport {
	return host{net: n, name: name}
}

// SetLinkFilter installs (or clears, with nil) the partition predicate:
// pairs for which it returns true (in either argument order) cannot
// communicate. Existing streams between such pairs are severed
// immediately, which the overlay observes as link failure.
func (n *Network) SetLinkFilter(f func(a, b string) bool) {
	n.mu.Lock()
	n.blocked = f
	pipes := append([]*pipe(nil), n.pipes...)
	n.mu.Unlock()
	if f == nil {
		return
	}
	for _, p := range pipes {
		if f(p.dialHost, p.acceptHost) || f(p.acceptHost, p.dialHost) {
			p.close()
		}
	}
}

// Stall suspends (stalled=true) or resumes writes travelling from one
// host to another on every current stream between them. A stalled
// direction models a peer that stops draining its socket: the sender's
// writer goroutine blocks, its bounded queue fills, and the overlay's
// slow-peer protection must sacrifice the link.
func (n *Network) Stall(from, to string, stalled bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, p := range n.pipes {
		for _, h := range [2]*half{p.d2a, p.a2d} {
			if h.from == from && h.to == to {
				h.mu.Lock()
				h.stalled = stalled
				h.cond.Broadcast()
				h.mu.Unlock()
			}
		}
	}
}

// Quiet reports whether the fabric holds no work: every open stream is
// empty AND has a reader parked on it. A stream whose reader is not
// parked is either still handshaking or processing a frame, so the
// fabric is not quiet. Callers combine Quiet with Node.Pending()==0
// (and poll for stability) to detect overlay quiescence.
func (n *Network) Quiet() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	quiet := true
	live := n.pipes[:0] // prune dead pipes so polls stay O(live streams)
	for _, p := range n.pipes {
		dead := true
		for _, h := range [2]*half{p.d2a, p.a2d} {
			h.mu.Lock()
			if !h.closed {
				dead = false
				if h.buf.Len() != 0 || h.readers == 0 {
					quiet = false
				}
			}
			h.mu.Unlock()
		}
		if !dead {
			live = append(live, p)
		}
	}
	n.pipes = live
	return quiet
}

func (n *Network) cut(a, b string) bool {
	if n.blocked == nil {
		return false
	}
	return n.blocked(a, b) || n.blocked(b, a)
}

// host is one endpoint's view of the Network.
type host struct {
	net  *Network
	name string
}

func (h host) Listen(addr string) (overlay.Listener, error) {
	n := h.net
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.listeners[addr]; dup {
		return nil, fmt.Errorf("sim: address %q already in use", addr)
	}
	l := &listener{
		net:     n,
		addr:    addr,
		owner:   h.name,
		backlog: make(chan *conn, 64),
		closed:  make(chan struct{}),
	}
	n.listeners[addr] = l
	return l, nil
}

func (h host) Dial(addr string, _ time.Duration) (overlay.Conn, error) {
	n := h.net
	n.mu.Lock()
	l, ok := n.listeners[addr]
	if !ok {
		n.mu.Unlock()
		return nil, fmt.Errorf("sim: no listener on %q", addr)
	}
	if n.cut(h.name, l.owner) {
		n.mu.Unlock()
		return nil, fmt.Errorf("sim: link %s-%s is partitioned", h.name, l.owner)
	}
	p := newPipe(h.name, l.owner)
	n.pipes = append(n.pipes, p)
	n.mu.Unlock()
	select {
	case l.backlog <- p.acceptSide:
		return p.dialSide, nil
	case <-l.closed:
		p.close()
		return nil, fmt.Errorf("sim: listener %q closed", addr)
	}
}

type listener struct {
	net     *Network
	addr    string
	owner   string
	backlog chan *conn
	closed  chan struct{}
	once    sync.Once
}

func (l *listener) Accept() (overlay.Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.closed:
		return nil, fmt.Errorf("sim: listener %q closed", l.addr)
	}
}

func (l *listener) Close() error {
	l.once.Do(func() {
		close(l.closed)
		l.net.mu.Lock()
		if l.net.listeners[l.addr] == l {
			delete(l.net.listeners, l.addr)
		}
		l.net.mu.Unlock()
		// Sever dials parked in the backlog so their handshake bytes
		// cannot hold the fabric non-quiet forever.
		for {
			select {
			case c := <-l.backlog:
				c.Close()
			default:
				return
			}
		}
	})
	return nil
}

func (l *listener) Addr() string { return l.addr }

// pipe is one bidirectional stream: two directed halves plus the two
// conn endpoints handed to the overlay.
type pipe struct {
	dialHost, acceptHost string
	d2a, a2d             *half // dialer→acceptor, acceptor→dialer
	dialSide, acceptSide *conn
}

func newPipe(dialHost, acceptHost string) *pipe {
	p := &pipe{
		dialHost:   dialHost,
		acceptHost: acceptHost,
		d2a:        newHalf(dialHost, acceptHost),
		a2d:        newHalf(acceptHost, dialHost),
	}
	p.dialSide = &conn{p: p, rd: p.a2d, wr: p.d2a, remote: acceptHost}
	p.acceptSide = &conn{p: p, rd: p.d2a, wr: p.a2d, remote: dialHost}
	return p
}

// close severs both directions; parked readers and writers wake with an
// error, exactly like a TCP connection reset.
func (p *pipe) close() {
	p.d2a.close()
	p.a2d.close()
}

// half is one direction of a pipe: a buffered byte stream with blocking
// reads, optional write stalling, and the instrumentation Quiet needs.
type half struct {
	from, to string
	mu       sync.Mutex
	cond     *sync.Cond
	buf      bytes.Buffer
	stalled  bool
	closed   bool
	// readers counts goroutines currently parked inside Read waiting
	// for bytes. A zero count on an open, empty stream means its
	// consumer is busy (handshaking or handling a frame) — not quiet.
	readers int
}

func newHalf(from, to string) *half {
	h := &half{from: from, to: to}
	h.cond = sync.NewCond(&h.mu)
	return h
}

func (h *half) Write(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for h.stalled && !h.closed {
		h.cond.Wait()
	}
	if h.closed {
		return 0, fmt.Errorf("sim: write on severed link %s->%s", h.from, h.to)
	}
	n, _ := h.buf.Write(p) // bytes.Buffer.Write never fails
	h.cond.Broadcast()
	return n, nil
}

func (h *half) Read(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for h.buf.Len() == 0 && !h.closed {
		h.readers++
		h.cond.Wait()
		h.readers--
	}
	if h.buf.Len() > 0 {
		return h.buf.Read(p)
	}
	return 0, fmt.Errorf("sim: link %s->%s severed", h.from, h.to)
}

func (h *half) close() {
	h.mu.Lock()
	// Undelivered bytes are lost with the link (and must not keep the
	// fabric looking busy).
	h.buf.Reset()
	h.closed = true
	h.cond.Broadcast()
	h.mu.Unlock()
}

// conn is one endpoint of a pipe, satisfying overlay.Conn.
type conn struct {
	p      *pipe
	rd, wr *half
	remote string
}

func (c *conn) Read(p []byte) (int, error)  { return c.rd.Read(p) }
func (c *conn) Write(p []byte) (int, error) { return c.wr.Write(p) }
func (c *conn) Close() error                { c.p.close(); return nil }
func (c *conn) RemoteAddr() string          { return c.remote }

// SetDeadline is a no-op: the simulation is clock-free, and the
// overlay's only deadline bounds a handshake that in-process peers
// always complete.
func (c *conn) SetDeadline(time.Time) error { return nil }
