package sim

import (
	"testing"

	"stopss/internal/overlay"
	"stopss/internal/store"
)

// view fetches one broker's cluster view indexed by broker name.
func view(c *Cluster, i int) map[string]overlay.ClusterEntry {
	out := make(map[string]overlay.ClusterEntry)
	for _, e := range c.Brokers[i].Node.ClusterView() {
		out[e.Broker] = e
	}
	return out
}

// TestOpsViewConvergence wires a 3-broker line and checks the cluster
// introspection gossip converges without any ticker: after Settle,
// every broker — including the end brokers, which never link to each
// other — holds a fresh summary for every other broker, and an
// explicit PublishOps refresh propagates updated counters end to end.
func TestOpsViewConvergence(t *testing.T) {
	c := NewCluster(t, 3)
	c.Wire([][2]int{{0, 1}, {1, 2}})

	for i := range c.Brokers {
		v := view(c, i)
		if len(v) != 3 {
			t.Fatalf("broker %d cluster view has %d entries, want 3: %v", i, len(v), v)
		}
		for name, e := range v {
			if e.Stale || e.Down {
				t.Errorf("broker %d sees %s stale=%v down=%v right after wiring", i, name, e.Stale, e.Down)
			}
			if !e.Self && e.Summary.Origin != name {
				t.Errorf("broker %d entry %s carries summary from %q", i, name, e.Summary.Origin)
			}
		}
		if !v[c.Brokers[i].Name].Self {
			t.Errorf("broker %d view lacks a self entry", i)
		}
	}

	// The attach-time summaries predate this subscription; a manual
	// refresh must carry the new counters across both hops.
	c.Subscribe(2, ge("x", 0))
	c.Settle()
	c.Publish(2, "x", 7)
	c.Settle()
	c.Brokers[2].Node.PublishOps()
	c.Settle()

	e := view(c, 0)["b02"]
	if e.Summary.Subscriptions != 1 {
		t.Errorf("b00's view of b02 reports %d subscriptions after refresh, want 1", e.Summary.Subscriptions)
	}
	if e.Summary.JournalHead == 0 {
		t.Errorf("b00's view of b02 reports journal head 0 after a publication")
	}
	if len(e.Summary.Links) != 1 || e.Summary.Links[0].Peer != "b01" {
		t.Errorf("b00's view of b02 reports links %+v, want exactly b01", e.Summary.Links)
	}
	c.VerifyExactlyOnce()
}

// TestOpsViewCrashStale crashes the middle broker of a line: both
// survivors are its direct neighbors, so their link failure must flag
// its entry down (and therefore stale) deterministically — no clock
// involved — while the survivors keep seeing each other fresh through
// their own still-valid summaries. Rejoin must clear the flag.
func TestOpsViewCrashStale(t *testing.T) {
	c := NewCluster(t, 3)
	c.Wire([][2]int{{0, 1}, {1, 2}})

	c.Crash(1)

	for _, i := range []int{0, 2} {
		v := view(c, i)
		e, ok := v["b01"]
		if !ok {
			t.Fatalf("broker %d lost b01's entry on crash; the view must keep it flagged, not drop it", i)
		}
		if !e.Down || !e.Stale {
			t.Errorf("broker %d sees crashed b01 down=%v stale=%v, want both true", i, e.Down, e.Stale)
		}
	}
	// The far entries (b00↔b02) were gossiped before the crash and are
	// not down — still trusted, just aging.
	if e := view(c, 0)["b02"]; e.Down {
		t.Errorf("b00 marked b02 down though only b01 crashed: %+v", e)
	}

	c.Rejoin(1)
	for _, i := range []int{0, 2} {
		if e := view(c, i)["b01"]; e.Down || e.Stale {
			t.Errorf("broker %d still sees b01 down=%v stale=%v after rejoin", i, e.Down, e.Stale)
		}
	}
	c.VerifyExactlyOnce()
}

// TestDetachedInterestSurvivesCrashRestart is the regression test for
// the DESIGN §11 crash-restart caveat: a durable subscription paged
// out to the store before the broker crashed must still pull remote
// publications to its broker after the restart. The restarted broker's
// link re-sync now offers detached store interests alongside resident
// ones; before that fix, the peer saw no interest, never forwarded,
// and the post-restart publication was lost to the subscriber forever.
func TestDetachedInterestSurvivesCrashRestart(t *testing.T) {
	c := NewCluster(t, 2, WithStore(store.Config{PageSize: 512, Pages: 64}))
	c.Wire([][2]int{{0, 1}})

	s := c.SubscribeDurable(0, ge("x", 0))
	c.Settle()

	c.Detach(s)
	c.CheckpointStore(0)
	c.SnapshotNow(0)
	c.CrashRestart(0)

	// Published AFTER the restart: only the re-advertised detached
	// interest can route it to b00, where the journal owes it.
	c.Publish(1, "x", 5)
	c.Settle()

	c.Resume(s)
	c.Settle()
	if dup := c.VerifyAtLeastOnce(); dup != 0 {
		t.Logf("at-least-once delivered with %d duplicates (allowed)", dup)
	}
}
