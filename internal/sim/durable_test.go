package sim

import (
	"testing"

	"stopss/internal/journal"
)

// TestDurableCrashRejoinNoLoss is the acceptance scenario of the
// durable-subscription subsystem: a durable subscriber's broker
// crashes MID-STREAM — after some publications were delivered and
// acknowledged, and while others sit parked behind a dead endpoint —
// and a fresh incarnation restored from snapshot + journal must close
// every gap. Duplicates are allowed (and counted); gaps are fatal;
// cursors must survive Snapshot/Restore.
func TestDurableCrashRejoinNoLoss(t *testing.T) {
	c := NewCluster(t, 3)
	c.Wire([][2]int{{0, 1}, {1, 2}}) // line: 0-1-2

	durable := c.SubscribeDurable(2, ge("x", 0))
	c.Subscribe(0, ge("x", 100)) // bystander: never matches
	c.SnapshotNow(2)             // periodic snapshotter image, taken before the stream
	c.Settle()

	// Phase 1: normal stream — delivered and acknowledged.
	for i := 1; i <= 8; i++ {
		c.Publish(0, "x", i)
	}
	c.Settle()

	// Phase 2: the subscriber endpoint dies; deliveries exhaust
	// retries and park behind the cursor (nothing dead-letters).
	c.SetSubscriberOffline(2, true)
	for i := 9; i <= 14; i++ {
		c.Publish(0, "x", i)
	}
	c.Settle()
	if dead := c.Brokers[2].NT.DeadLetters(); len(dead) != 0 {
		t.Fatalf("durable failures dead-lettered instead of parking: %d", len(dead))
	}
	if st := c.Brokers[2].B.Stats(); st.Parked == 0 {
		t.Fatalf("nothing parked: %+v", st)
	}

	// Phase 3: the broker process crashes and restarts from the
	// pre-stream snapshot + the journal; the endpoint is back. The
	// restored cursor comes from the journal's persistence (the
	// snapshot's is 0) and catch-up replays the unacknowledged tail.
	c.SetSubscriberOffline(2, false)
	c.CrashRestart(2)

	cur, ok := c.Brokers[2].B.DurableCursor(durable.ID)
	if !ok {
		t.Fatal("durable state lost across restart")
	}
	if cur < 8 {
		t.Fatalf("restored cursor %d: acknowledged prefix forgotten (snapshot/journal merge broken)", cur)
	}

	// Phase 4: the stream continues after the rejoin.
	for i := 15; i <= 20; i++ {
		c.Publish(0, "x", i)
	}
	c.Settle()

	dups := c.VerifyAtLeastOnce()
	t.Logf("at-least-once verified over %d pubs with %d duplicate deliveries", 20, dups)
	// The acked prefix (phase 1) must not have been replayed: the
	// cursor survived, so duplicates can only come from phase-2
	// in-flight races, of which this scenario has none.
	if dups != 0 {
		t.Errorf("unexpected duplicates (%d): acked prefix replayed?", dups)
	}
}

// TestDurableSlowSubscriberParksAndResumes: a subscriber endpoint
// flaps without any broker failing. While it is away, durable
// deliveries park (bounded dead-letter list stays empty); on
// reconnect, ResumeDurable replays exactly the parked tail.
func TestDurableSlowSubscriberParksAndResumes(t *testing.T) {
	c := NewCluster(t, 2)
	c.Wire([][2]int{{0, 1}})

	s := c.SubscribeDurable(1, ge("x", 0))
	c.Settle()

	for i := 1; i <= 5; i++ {
		c.Publish(0, "x", i)
	}
	c.Settle()

	c.SetSubscriberOffline(1, true)
	for i := 6; i <= 10; i++ {
		c.Publish(0, "x", i)
	}
	c.Settle()
	st := c.Brokers[1].B.Stats()
	if st.Parked != 5 {
		t.Fatalf("parked = %d, want 5", st.Parked)
	}
	if st.Notify.DeadLetters != 0 {
		t.Fatalf("dead letters = %d, want 0 (durable failures park)", st.Notify.DeadLetters)
	}
	if cur, _ := c.Brokers[1].B.DurableCursor(s.ID); cur != 5 {
		t.Fatalf("cursor = %d, want pinned at 5 under parked deliveries", cur)
	}

	c.SetSubscriberOffline(1, false)
	n, err := c.Brokers[1].B.ResumeDurable(s.Client, s.ID)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("resume redispatched %d, want 5", n)
	}
	c.Settle()
	if dups := c.VerifyAtLeastOnce(); dups != 0 {
		t.Errorf("duplicates = %d, want 0 (no crash in this scenario)", dups)
	}
	if cur, _ := c.Brokers[1].B.DurableCursor(s.ID); cur != 10 {
		t.Errorf("cursor = %d, want 10 after resume", cur)
	}
}

// TestDurableRetentionPressure: tiny segments and a hard retention cap.
// A promptly-acking subscriber keeps the journal compacted (no loss);
// then, with the subscriber gone, the cap forces the journal to drop
// unacked history — the documented retention-over-replay trade — and
// the loss is visible in the stats rather than silent.
func TestDurableRetentionPressure(t *testing.T) {
	c := NewCluster(t, 1, WithJournalConfig(journal.Config{
		SegmentBytes:   512,
		RetentionBytes: 2048,
	}))
	s := c.SubscribeDurable(0, ge("x", 0))

	// Healthy phase: acks keep pace (settling between batches, like a
	// subscriber that consumes as fast as the stream), compaction
	// reclaims history, and nothing is lost despite the journal
	// rolling many times over.
	for i := 1; i <= 60; i++ {
		c.Publish(0, "x", i)
		if i%10 == 0 {
			c.Settle()
		}
	}
	c.Settle()
	st := c.Brokers[0].B.Stats()
	if st.Journal.CompactedSegments == 0 {
		t.Fatalf("no compaction under prompt acks: %+v", st.Journal)
	}
	if st.Journal.RetentionLostRecords != 0 {
		t.Fatalf("records lost while acks kept pace: %+v", st.Journal)
	}
	if dups := c.VerifyAtLeastOnce(); dups != 0 {
		t.Errorf("duplicates = %d, want 0", dups)
	}

	// Pressure phase: subscriber gone, cursor pinned, cap exceeded —
	// the oldest unacked segments are dropped and counted.
	c.SetSubscriberOffline(0, true)
	for i := 61; i <= 160; i++ {
		c.Publish(0, "x", i)
	}
	c.Settle()
	st = c.Brokers[0].B.Stats()
	if st.Journal.RetentionDroppedSegments == 0 || st.Journal.RetentionLostRecords == 0 {
		t.Fatalf("retention cap never engaged: %+v", st.Journal)
	}
	if st.Journal.FirstSeq <= 61 {
		t.Fatalf("FirstSeq = %d: cap did not advance the retained window", st.Journal.FirstSeq)
	}

	// Replay degrades gracefully: everything still retained is
	// redelivered; the counted loss is the only gap.
	c.SetSubscriberOffline(0, false)
	first := st.Journal.FirstSeq
	if _, err := c.Brokers[0].B.ResumeDurable(s.Client, s.ID); err != nil {
		t.Fatal(err)
	}
	c.Settle()
	// In this single-broker scenario journal seqs equal sim pub seqs.
	for seq := int(first); seq <= 160; seq++ {
		if got := c.Brokers[0].rec.count(s.Client, s.ID, seq); got == 0 {
			t.Errorf("retained pub %d never delivered after resume", seq)
		}
	}
}
