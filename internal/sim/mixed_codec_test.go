package sim

import (
	"testing"

	"stopss/internal/overlay"
)

// TestMixedCodecCluster models a rolling upgrade: b01 only speaks the
// legacy JSON framing while b00 and b02 support the binary codec. The
// hello negotiation must settle every link on the highest framing both
// ends share — JSON on anything touching b01, binary between upgraded
// peers elsewhere — and routing across the mixed line must stay
// exactly-once in both directions.
func TestMixedCodecCluster(t *testing.T) {
	c := NewCluster(t, 3, WithNodeConfig(func(i int, cfg *overlay.Config) {
		if i == 1 {
			cfg.DisableBinary = true // the not-yet-upgraded broker
		}
	}))
	// Triangle: the b00–b02 edge is binary↔binary, both edges touching
	// b01 must fall back to JSON.
	c.Wire([][2]int{{0, 1}, {1, 2}, {0, 2}})

	if got := c.Brokers[0].Node.Registry().Gauge("overlay.link.b02.codec").Value(); got != 2 {
		t.Fatalf("b00→b02 negotiated codec %d, want 2 (current binary codec between upgraded peers)", got)
	}
	// Both upgraded brokers negotiated DOWN to JSON against b01.
	for _, probe := range []struct{ node, peer string }{
		{"b00", "b01"}, {"b02", "b01"}, {"b01", "b00"}, {"b01", "b02"},
	} {
		i := int(probe.node[2] - '0')
		got := c.Brokers[i].Node.Registry().Gauge("overlay.link." + probe.peer + ".codec").Value()
		if got != 0 {
			t.Fatalf("link %s→%s negotiated codec %d, want 0 (JSON fallback)", probe.node, probe.peer, got)
		}
	}

	c.Subscribe(0, ge("x", 0))
	c.Subscribe(2, ge("x", 10))
	c.Settle()

	// Publications crossing the codec boundary in both directions.
	c.Publish(0, "x", 15) // binary→JSON→JSON: s0 and s2
	c.Publish(2, "x", 5)  // JSON-side origin back to the binary side: s0
	c.Publish(1, "x", 42) // from the legacy broker itself: s0 and s2
	c.Settle()
	c.VerifyExactlyOnce()
}
