package sim

import (
	"testing"

	"stopss/internal/trace"
)

// TestTraceLineSpanTree publishes across a 3-broker line and asserts
// the origin assembles the COMPLETE span tree: publish, journal append
// and match at the origin, forward/recv hops toward the subscriber's
// broker, and the deliver span reported back along the reverse path.
func TestTraceLineSpanTree(t *testing.T) {
	c := NewCluster(t, 3)
	c.Wire(Line(3))

	local := c.Subscribe(0, ge("x", 0)) // delivered at the origin itself
	far := c.Subscribe(2, ge("x", 10))  // two hops away
	c.Subscribe(1, ge("x", 1000))       // never matches
	c.Settle()

	p := c.Publish(0, "x", 50) // matches both subscribers
	c.Settle()
	c.VerifyExactlyOnce()
	if checked, _ := c.VerifyTraceComplete(); checked != 1 {
		t.Fatalf("VerifyTraceComplete checked %d pubs, want 1", checked)
	}

	// The origin's assembled tree names every stage and both endpoints.
	spans := c.Brokers[0].B.Tracer().Spans(p.ID)
	perBroker := make(map[string]map[string]int) // broker → kind → count
	for _, s := range spans {
		if perBroker[s.Broker] == nil {
			perBroker[s.Broker] = make(map[string]int)
		}
		perBroker[s.Broker][s.Kind]++
	}
	for broker, kinds := range map[string][]string{
		"b00": {trace.KindPublish, trace.KindJournal, trace.KindMatch, trace.KindForward, trace.KindDeliver},
		"b01": {trace.KindRecv, trace.KindMatch, trace.KindForward},
		"b02": {trace.KindRecv, trace.KindMatch, trace.KindDeliver},
	} {
		for _, kind := range kinds {
			if perBroker[broker][kind] == 0 {
				t.Errorf("span tree lacks %s@%s; got %v", kind, broker, perBroker)
			}
		}
	}
	// Spans come back start-ordered: the publish admission leads.
	if len(spans) == 0 || spans[0].Kind != trace.KindPublish {
		t.Fatalf("first span is %+v, want the origin publish", spans[0])
	}

	// Intermediate b01 held the pub's spans too (it relayed the trace
	// report), and b02 at least its own contribution.
	if len(c.Brokers[1].B.Tracer().Spans(p.ID)) == 0 {
		t.Error("relay broker b01 dropped the trace")
	}
	if len(c.Brokers[2].B.Tracer().Spans(p.ID)) == 0 {
		t.Error("delivering broker b02 holds no trace")
	}
	_, _ = local, far
}

// TestTraceExactlyOnceRing runs the cyclic-topology scenario and
// demands complete traces even when duplicate suppression drops
// redundant copies of each publication.
func TestTraceExactlyOnceRing(t *testing.T) {
	c := NewCluster(t, 5)
	c.Wire(Ring(5))

	c.Subscribe(0, ge("x", 0))
	c.Subscribe(2, ge("x", 50))
	c.Settle()

	for i := 0; i < 5; i++ {
		c.Publish(i, "x", i*25)
	}
	c.Settle()
	c.VerifyExactlyOnce()
	if checked, skipped := c.VerifyTraceComplete(); checked != 5 || skipped != 0 {
		t.Fatalf("VerifyTraceComplete checked %d/skipped %d, want 5/0", checked, skipped)
	}
}

// TestTraceDurableCrashRejoin mixes trace verification with the
// durable crash-restart scenario: publications that straddle the fault
// are exempt (trace state is in-memory and dies with the process), but
// publications after the rejoin must trace completely again.
func TestTraceDurableCrashRejoin(t *testing.T) {
	c := NewCluster(t, 2)
	c.Wire(Line(2))

	c.SubscribeDurable(1, ge("x", 0))
	c.Settle()
	c.SnapshotNow(1)

	c.Publish(0, "x", 1) // fault-free window: checked strictly
	c.Settle()

	c.CrashRestart(1)
	c.Publish(0, "x", 2) // same faultSeq from here on: checked strictly
	c.Publish(1, "x", 3)
	c.Settle()
	c.VerifyAtLeastOnce()

	checked, skipped := c.VerifyTraceComplete()
	if skipped != 1 {
		t.Fatalf("VerifyTraceComplete skipped %d pubs, want the 1 straddling the restart", skipped)
	}
	if checked != 2 {
		t.Fatalf("VerifyTraceComplete checked %d pubs, want the 2 after the rejoin", checked)
	}
}
