package sim

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"stopss/internal/broker"
	"stopss/internal/core"
	"stopss/internal/journal"
	"stopss/internal/knowledge"
	"stopss/internal/message"
	"stopss/internal/notify"
	"stopss/internal/overlay"
	"stopss/internal/semantic"
	"stopss/internal/store"
	"stopss/internal/trace"
)

// seqAttr carries the harness's per-publication sequence number inside
// each event, which is how deliveries are matched back to publications.
// Scenario subscriptions must not constrain it.
const seqAttr = "sim_seq"

// Broker is one simulated overlay participant: a real broker.Broker
// and overlay.Node wired over the in-process fabric, with a recording
// notification transport and a publication journal on disk.
type Broker struct {
	Name    string
	idx     int // position in Cluster.Brokers (stable across restarts)
	B       *broker.Broker
	Node    *overlay.Node
	NT      *notify.Engine
	KB      *knowledge.Base
	J       *journal.Journal
	ST      *store.Store // nil unless the cluster was built WithStore
	jdir    string
	snap    []byte // last SnapshotNow image; consumed by CrashRestart
	rec     *recorder
	crashed bool
}

// Sub is one scenario subscription, tracked so invariants can be
// checked against it later. Active is cleared by Cluster.Unsubscribe.
type Sub struct {
	BrokerIdx int
	Client    string
	ID        message.SubID
	Preds     []message.Predicate
	Active    bool
	Durable   bool
}

// Pub is one scenario publication together with the outcome expected
// of it, frozen at publish time: the set of then-active subscriptions
// that match the event AND whose broker was then reachable from the
// origin.
type Pub struct {
	Seq      int
	Origin   int
	Event    message.Event
	Expected map[*Sub]bool
	// ID is the publication's trace identity (name#epoch/seq) as minted
	// by the origin broker's tracer.
	ID string
	// faultSeq snapshots Cluster.faultSeq at publish time; trace
	// completeness is only asserted for publications whose delivery
	// window saw no fault (trace state is in-memory by design).
	faultSeq int
}

// Cluster wires N brokers over one Network and drives scenarios:
// topology construction, subscriptions, publications, fault injection,
// and invariant verification.
type Cluster struct {
	tb      testing.TB
	Net     *Network
	Brokers []*Broker

	jcfg    journal.Config                   // template; Dir is per-broker
	scfg    *store.Config                    // template; Path is per-broker; nil = no store
	edges   map[[2]int]bool                  // configured topology
	live    map[[2]int]bool                  // edges currently connected
	nodeCfg func(i int, cfg *overlay.Config) // optional per-broker tweak

	subs []*Sub
	pubs []*Pub
	seq  int
	// faultSeq counts fault injections (crash, restart, partition,
	// offline subscriber). Publications that straddle a fault are exempt
	// from VerifyTraceComplete's full-chain requirement.
	faultSeq int
}

// Option tunes cluster construction.
type Option func(*Cluster)

// WithJournalConfig overrides the per-broker journal template (Dir is
// always assigned per broker). The default is a plain journal with
// small segments and no fsync — scenarios exercising retention or
// crash durability tighten it.
func WithJournalConfig(cfg journal.Config) Option {
	return func(c *Cluster) { c.jcfg = cfg }
}

// WithStore gives every broker a paged subscription store (Path is
// always assigned per broker), enabling Detach/Resume scenarios.
// Scenarios stressing eviction shrink PageSize/Pages in the template.
func WithStore(cfg store.Config) Option {
	return func(c *Cluster) { c.scfg = &cfg }
}

// WithNodeConfig installs a per-broker overlay configuration hook, run
// after the harness seeds Name/Listen/Transport and before the node
// starts (also on every rejoin or crash-restart incarnation). Scenarios
// use it to pin per-broker knobs — e.g. DisableBinary, to model a
// mixed-version cluster where some brokers only speak the JSON codec.
func WithNodeConfig(f func(i int, cfg *overlay.Config)) Option {
	return func(c *Cluster) { c.nodeCfg = f }
}

// NewCluster builds n brokers (named b00, b01, …) with started overlay
// nodes listening on the fabric and a publication journal each, but no
// links; callers wire a topology with Wire or Connect. Cleanup is
// registered on tb.
func NewCluster(tb testing.TB, n int, opts ...Option) *Cluster {
	tb.Helper()
	c := &Cluster{
		tb:    tb,
		Net:   NewNetwork(),
		jcfg:  journal.Config{SegmentBytes: 64 << 10},
		edges: make(map[[2]int]bool),
		live:  make(map[[2]int]bool),
	}
	for _, o := range opts {
		o(c)
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("b%02d", i)
		rec := newRecorder()
		nt, err := notify.NewEngine(notify.Config{Workers: 2, QueueSize: 1 << 16,
			MaxRetries: 2, Backoff: time.Millisecond}, rec)
		if err != nil {
			tb.Fatal(err)
		}
		base := knowledge.NewBase(nil, nil, nil)
		b := &Broker{
			Name: name,
			idx:  i,
			B: broker.New(core.NewEngine(base.Stage(semantic.FullConfig()),
				core.WithKnowledge(base)), nt),
			NT:   nt,
			KB:   base,
			jdir: filepath.Join(tb.TempDir(), name),
			rec:  rec,
		}
		jcfg := c.jcfg
		jcfg.Dir = b.jdir
		j, err := journal.Open(jcfg)
		if err != nil {
			tb.Fatal(err)
		}
		b.J = j
		b.B.AttachJournal(j)
		if c.scfg != nil {
			scfg := *c.scfg
			scfg.Path = filepath.Join(b.jdir, "subs.heap")
			st, err := store.Open(scfg)
			if err != nil {
				tb.Fatal(err)
			}
			b.ST = st
			if err := b.B.AttachStore(st); err != nil {
				tb.Fatal(err)
			}
		}
		c.startNode(b)
		c.Brokers = append(c.Brokers, b)
	}
	tb.Cleanup(func() {
		for _, b := range c.Brokers {
			if !b.crashed {
				b.Node.Close()
			}
			b.NT.Close()
			_ = b.J.Close()
			if b.ST != nil {
				_ = b.ST.Close()
			}
		}
	})
	return c
}

// startNode creates and starts a fresh overlay node for b (initial
// start and rejoin share this).
func (c *Cluster) startNode(b *Broker) {
	c.tb.Helper()
	cfg := overlay.Config{
		Name:      b.Name,
		Listen:    b.Name, // fabric addresses are just names
		Transport: c.Net.Host(b.Name),
	}
	if c.nodeCfg != nil {
		c.nodeCfg(b.idx, &cfg)
	}
	node, err := overlay.NewNode(cfg, b.B)
	if err != nil {
		c.tb.Fatal(err)
	}
	if err := node.Start(); err != nil {
		c.tb.Fatal(err)
	}
	b.Node = node
	b.crashed = false
	// Fresh stamping identity per incarnation, mirroring publication
	// epochs: a rejoined broker's new deltas can never collide with its
	// previous life's.
	b.B.SetKnowledgeOrigin(knowledge.NewOrigin(b.Name))
}

// Connect links brokers i and j (j dials i) and records the edge as
// part of the configured topology.
func (c *Cluster) Connect(i, j int) {
	c.tb.Helper()
	if err := c.Brokers[j].Node.Dial(c.Brokers[i].Name); err != nil {
		c.tb.Fatalf("sim: connecting %d-%d: %v", i, j, err)
	}
	e := edge(i, j)
	c.edges[e] = true
	c.live[e] = true
}

// Wire connects every edge of a topology and settles the cluster.
func (c *Cluster) Wire(edges [][2]int) {
	c.tb.Helper()
	for _, e := range edges {
		c.Connect(e[0], e[1])
	}
	c.Settle()
}

// Subscribe registers a fresh client on broker i with a recording
// route and subscribes it. The subscription is tracked for invariant
// checking.
func (c *Cluster) Subscribe(i int, preds ...message.Predicate) *Sub {
	c.tb.Helper()
	b := c.Brokers[i]
	client := fmt.Sprintf("%s-c%d", b.Name, len(c.subs))
	if err := b.B.Register(broker.Client{Name: client, Route: notify.Route{Transport: "sim", Addr: client}}); err != nil {
		c.tb.Fatal(err)
	}
	id, err := b.B.Subscribe(client, preds)
	if err != nil {
		c.tb.Fatal(err)
	}
	s := &Sub{BrokerIdx: i, Client: client, ID: id, Preds: preds, Active: true}
	c.subs = append(c.subs, s)
	return s
}

// SubscribeDurable is Subscribe with at-least-once, journal-backed
// delivery: the subscription's cursor advances only on acknowledged
// delivery and VerifyAtLeastOnce checks it for gaps instead of
// exactly-once.
func (c *Cluster) SubscribeDurable(i int, preds ...message.Predicate) *Sub {
	c.tb.Helper()
	b := c.Brokers[i]
	client := fmt.Sprintf("%s-c%d", b.Name, len(c.subs))
	if err := b.B.Register(broker.Client{Name: client, Route: notify.Route{Transport: "sim", Addr: client}}); err != nil {
		c.tb.Fatal(err)
	}
	id, err := b.B.SubscribeDurable(client, preds)
	if err != nil {
		c.tb.Fatal(err)
	}
	s := &Sub{BrokerIdx: i, Client: client, ID: id, Preds: preds, Active: true, Durable: true}
	c.subs = append(c.subs, s)
	return s
}

// SetSubscriberOffline simulates broker i's notification endpoints
// going away (or coming back): while offline every delivery attempt
// fails, so durable notifications exhaust retries and park.
func (c *Cluster) SetSubscriberOffline(i int, offline bool) {
	c.faultSeq++
	c.Brokers[i].rec.setOffline(offline)
}

// SnapshotNow captures broker i's durable state (what a periodic
// snapshotter would persist); CrashRestart consumes it. Subscriptions
// created after the snapshot do not survive a CrashRestart, so
// scenarios snapshot after their subscription setup.
func (c *Cluster) SnapshotNow(i int) {
	c.tb.Helper()
	var buf bytes.Buffer
	if err := c.Brokers[i].B.Snapshot(&buf); err != nil {
		c.tb.Fatal(err)
	}
	c.Brokers[i].snap = buf.Bytes()
}

// CrashRestart kills broker i's PROCESS — overlay node, notifier and
// broker object all go away, losing every in-memory delivery window —
// and boots a fresh incarnation from the SnapshotNow image plus the
// on-disk journal: restore, cursor merge, catch-up replay, then rejoin
// the overlay. This is the crash model behind the at-least-once
// guarantee; Crash/Rejoin model mere connectivity loss.
func (c *Cluster) CrashRestart(i int) {
	c.tb.Helper()
	b := c.Brokers[i]
	if b.snap == nil {
		c.tb.Fatalf("sim: CrashRestart(%d) needs SnapshotNow(%d) first", i, i)
	}
	c.faultSeq++
	if !b.crashed {
		b.Node.Close()
		b.crashed = true
		for e := range c.live {
			if e[0] == i || e[1] == i {
				delete(c.live, e)
			}
		}
	}
	c.Settle()
	b.NT.Close()
	if err := b.J.Close(); err != nil {
		c.tb.Fatal(err)
	}

	// Fresh incarnation: new notifier (same recording endpoint — the
	// subscriber side survives), new engine/KB, journal reopened from
	// the same directory, state restored from the snapshot.
	nt, err := notify.NewEngine(notify.Config{Workers: 2, QueueSize: 1 << 16,
		MaxRetries: 2, Backoff: time.Millisecond}, b.rec)
	if err != nil {
		c.tb.Fatal(err)
	}
	base := knowledge.NewBase(nil, nil, nil)
	br := broker.New(core.NewEngine(base.Stage(semantic.FullConfig()),
		core.WithKnowledge(base)), nt)
	jcfg := c.jcfg
	jcfg.Dir = b.jdir
	j, err := journal.Open(jcfg)
	if err != nil {
		c.tb.Fatal(err)
	}
	br.AttachJournal(j)
	if b.ST != nil {
		// The old store handle is abandoned unclosed — the crash loses
		// everything its pool had not checkpointed, by design. The new
		// incarnation recovers from the on-disk image (store before
		// Restore: restoreDurable's 3-way cursor merge needs it).
		scfg := *c.scfg
		scfg.Path = filepath.Join(b.jdir, "subs.heap")
		st, err := store.Open(scfg)
		if err != nil {
			c.tb.Fatalf("sim: reopening store of %s: %v", b.Name, err)
		}
		b.ST = st
		if err := br.AttachStore(st); err != nil {
			c.tb.Fatalf("sim: reattaching store of %s: %v", b.Name, err)
		}
	}
	if err := br.Restore(bytes.NewReader(b.snap)); err != nil {
		c.tb.Fatalf("sim: restoring %s: %v", b.Name, err)
	}
	b.B, b.NT, b.KB, b.J = br, nt, base, j
	if _, err := br.CatchUp(); err != nil {
		c.tb.Fatalf("sim: catch-up on %s: %v", b.Name, err)
	}

	c.startNode(b)
	for e := range c.edges {
		if e[0] != i && e[1] != i {
			continue
		}
		other := e[0] + e[1] - i
		if c.Brokers[other].crashed || c.Net.cut(b.Name, c.Brokers[other].Name) {
			continue
		}
		if err := b.Node.Dial(c.Brokers[other].Name); err != nil {
			c.tb.Fatalf("sim: restart dial %d-%d: %v", i, other, err)
		}
		c.live[edge(i, other)] = true
	}
	c.Settle()
}

// Unsubscribe withdraws a tracked subscription; publications after this
// point expect no delivery to it.
func (c *Cluster) Unsubscribe(s *Sub) {
	c.tb.Helper()
	if err := c.Brokers[s.BrokerIdx].B.Unsubscribe(s.Client, s.ID); err != nil {
		c.tb.Fatal(err)
	}
	s.Active = false
}

// Detach pages a durable subscription out to its broker's store
// (requires WithStore). The subscription stays Active for expectation
// purposes: publications while detached are journaled and owed, and
// must arrive after Resume — that is the at-least-once contract under
// paging. Counts as a fault for trace-completeness purposes (replayed
// deliveries rebuild no origin span chain).
func (c *Cluster) Detach(s *Sub) {
	c.tb.Helper()
	c.faultSeq++
	if err := c.Brokers[s.BrokerIdx].B.DetachDurable(s.Client, s.ID); err != nil {
		c.tb.Fatalf("sim: detaching %s/sub %d: %v", s.Client, s.ID, err)
	}
}

// Resume faults a detached subscription back in and replays what it
// missed. Call Settle afterwards before verifying.
func (c *Cluster) Resume(s *Sub) {
	c.tb.Helper()
	c.faultSeq++
	if _, err := c.Brokers[s.BrokerIdx].B.ResumeDurable(s.Client, s.ID); err != nil {
		c.tb.Fatalf("sim: resuming %s/sub %d: %v", s.Client, s.ID, err)
	}
}

// CheckpointStore flushes broker i's subscription store, making every
// detach so far crash-durable (detach durability is checkpoint-
// granular). Scenarios call this before CrashRestart when detached
// records must survive.
func (c *Cluster) CheckpointStore(i int) {
	c.tb.Helper()
	if err := c.Brokers[i].B.CheckpointStore(); err != nil {
		c.tb.Fatal(err)
	}
}

// Publish emits an event (attribute/value pairs as in message.E) from
// broker i, stamping it with a sequence attribute and freezing the
// expected delivery set: active matching subscriptions on brokers
// reachable from i over live links.
func (c *Cluster) Publish(i int, kv ...any) *Pub {
	c.tb.Helper()
	c.seq++
	ev := message.E(append(append([]any{}, kv...), seqAttr, c.seq)...)
	p := &Pub{Seq: c.seq, Origin: i, Event: ev, Expected: make(map[*Sub]bool), faultSeq: c.faultSeq}
	reach := c.reachable(i)
	for _, s := range c.subs {
		if s.Active && reach[s.BrokerIdx] && message.NewSubscription(s.ID, s.Client, s.Preds...).Matches(ev) {
			p.Expected[s] = true
		}
	}
	res, err := c.Brokers[i].B.Publish(ev)
	if err != nil {
		c.tb.Fatal(err)
	}
	p.ID = res.PubID
	c.pubs = append(c.pubs, p)
	return p
}

// PublishExpect emits an event from broker i with an explicitly frozen
// expected delivery set, for scenarios whose matching depends on
// semantic knowledge the harness's syntactic predicate check cannot
// model (synonym rewrites, hierarchy generalization). The caller names
// exactly the subscriptions that must be delivered once; every other
// tracked subscription must receive nothing.
func (c *Cluster) PublishExpect(i int, expected []*Sub, kv ...any) *Pub {
	c.tb.Helper()
	c.seq++
	ev := message.E(append(append([]any{}, kv...), seqAttr, c.seq)...)
	p := &Pub{Seq: c.seq, Origin: i, Event: ev, Expected: make(map[*Sub]bool), faultSeq: c.faultSeq}
	for _, s := range expected {
		p.Expected[s] = true
	}
	res, err := c.Brokers[i].B.Publish(ev)
	if err != nil {
		c.tb.Fatal(err)
	}
	p.ID = res.PubID
	c.pubs = append(c.pubs, p)
	return p
}

// InjectKB stamps (if needed) and applies a knowledge delta at broker
// i; the overlay floods it from there. Call Settle before asserting
// convergence.
func (c *Cluster) InjectKB(i int, d knowledge.Delta) core.KnowledgeReport {
	c.tb.Helper()
	rep, err := c.Brokers[i].B.InjectKnowledge(d)
	if err != nil {
		c.tb.Fatalf("sim: injecting delta at broker %d: %v", i, err)
	}
	return rep
}

// KBVersions snapshots every live broker's knowledge version, indexed
// like Brokers (crashed brokers report their last state too — the base
// survives node crashes).
func (c *Cluster) KBVersions() []knowledge.Version {
	out := make([]knowledge.Version, len(c.Brokers))
	for i, b := range c.Brokers {
		out[i] = b.KB.Version()
	}
	return out
}

// VerifyKBConverged asserts that every non-crashed broker holds the
// same knowledge version (same delta log, digest-equal) AND that each
// probe event expands to byte-identical derived event sets on every
// broker — the end-to-end "matching cannot diverge" check. Call after
// Settle.
func (c *Cluster) VerifyKBConverged(probes ...message.Event) {
	c.tb.Helper()
	ref := -1
	for i, b := range c.Brokers {
		if b.crashed {
			continue
		}
		if ref == -1 {
			ref = i
			continue
		}
		want, got := c.Brokers[ref].KB.Version(), b.KB.Version()
		if got.Digest != want.Digest || got.Deltas != want.Deltas || got.Rejected != want.Rejected {
			c.tb.Errorf("sim: KB diverged: %s has %+v, %s has %+v",
				c.Brokers[ref].Name, want, b.Name, got)
		}
	}
	if ref == -1 {
		return
	}
	for _, probe := range probes {
		want := expansionSignatures(c.Brokers[ref].B, probe)
		for i, b := range c.Brokers {
			if b.crashed || i == ref {
				continue
			}
			got := expansionSignatures(b.B, probe)
			if len(got) != len(want) {
				c.tb.Errorf("sim: probe %v expands to %d events on %s but %d on %s",
					probe, len(want), c.Brokers[ref].Name, len(got), b.Name)
				continue
			}
			for j := range want {
				if got[j] != want[j] {
					c.tb.Errorf("sim: probe %v expansion differs between %s and %s:\n  %s\n  %s",
						probe, c.Brokers[ref].Name, b.Name, want[j], got[j])
					break
				}
			}
		}
	}
}

// expansionSignatures runs one event through a broker's semantic stage
// and returns the sorted signatures of the derived event set.
func expansionSignatures(b *broker.Broker, ev message.Event) []string {
	res := b.Engine().Stage().ProcessEvent(ev)
	sigs := make([]string, len(res.Events))
	for i, e := range res.Events {
		sigs[i] = e.Signature()
	}
	sort.Strings(sigs)
	return sigs
}

// Crash closes broker i's overlay node: every link drops, its listener
// closes, and peers detach. The broker itself (subscriptions, clients)
// survives, modelling a connectivity failure of one process.
func (c *Cluster) Crash(i int) {
	c.tb.Helper()
	c.faultSeq++
	b := c.Brokers[i]
	b.Node.Close()
	b.crashed = true
	for e := range c.live {
		if e[0] == i || e[1] == i {
			delete(c.live, e)
		}
	}
	c.Settle()
}

// Rejoin restarts broker i's overlay node on the same broker state and
// re-dials every configured edge whose far end is up and not
// partitioned away.
func (c *Cluster) Rejoin(i int) {
	c.tb.Helper()
	b := c.Brokers[i]
	if !b.crashed {
		c.tb.Fatalf("sim: broker %d is not crashed", i)
	}
	c.startNode(b)
	for e := range c.edges {
		if e[0] != i && e[1] != i {
			continue
		}
		other := e[0] + e[1] - i
		if c.Brokers[other].crashed || c.Net.cut(b.Name, c.Brokers[other].Name) {
			continue
		}
		if err := b.Node.Dial(c.Brokers[other].Name); err != nil {
			c.tb.Fatalf("sim: rejoin dial %d-%d: %v", i, other, err)
		}
		c.live[e] = true
	}
	c.Settle()
}

// Partition splits the cluster: the given brokers on one side,
// everyone else on the other. Links crossing the cut are severed and
// new dials across it fail until Heal.
func (c *Cluster) Partition(group ...int) {
	c.tb.Helper()
	c.faultSeq++
	side := make(map[string]bool)
	in := make(map[int]bool)
	for _, i := range group {
		in[i] = true
		side[c.Brokers[i].Name] = true
	}
	c.Net.SetLinkFilter(func(a, b string) bool { return side[a] != side[b] })
	for e := range c.live {
		if in[e[0]] != in[e[1]] {
			delete(c.live, e)
		}
	}
	c.Settle()
}

// Heal lifts the partition and re-dials every configured edge that is
// currently down between live brokers.
func (c *Cluster) Heal() {
	c.tb.Helper()
	c.Net.SetLinkFilter(nil)
	for e := range c.edges {
		if c.live[e] || c.Brokers[e[0]].crashed || c.Brokers[e[1]].crashed {
			continue
		}
		if err := c.Brokers[e[1]].Node.Dial(c.Brokers[e[0]].Name); err != nil {
			c.tb.Fatalf("sim: heal dial %d-%d: %v", e[0], e[1], err)
		}
		c.live[e] = true
	}
	c.Settle()
}

// Settle blocks until the overlay is quiescent — no bytes on any
// stream, every stream reader parked, no node holding unflushed frames
// — stably across several consecutive observations, then drains every
// notifier so delivery assertions see all notifications. Draining can
// itself create traffic: delivery hooks emit trace reports back toward
// each publication's origin, so the outer loop settles again until a
// drain pass leaves the network quiet. It never sleeps for effect; the
// deadline exists only to fail loudly instead of hanging if the
// overlay livelocks.
func (c *Cluster) Settle() {
	c.tb.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		c.waitQuiesced(deadline)
		for _, b := range c.Brokers {
			if !b.NT.Drain(10 * time.Second) {
				c.tb.Fatalf("sim: notifier of %s did not drain", b.Name)
			}
		}
		if c.quiesced() {
			return
		}
	}
}

// waitQuiesced spins until the network is stably quiet (three
// consecutive observations) or the deadline passes.
func (c *Cluster) waitQuiesced(deadline time.Time) {
	c.tb.Helper()
	misses := 0
	for quiet := 0; quiet < 3; {
		if time.Now().After(deadline) {
			c.tb.Fatal("sim: cluster did not quiesce within 30s")
		}
		if c.quiesced() {
			quiet++
		} else {
			quiet = 0
			if misses++; misses%256 == 0 {
				time.Sleep(time.Millisecond) // be kind to the scheduler on long settles
			}
		}
		runtime.Gosched()
	}
}

func (c *Cluster) quiesced() bool {
	if !c.Net.Quiet() {
		return false
	}
	for _, b := range c.Brokers {
		if !b.crashed && b.Node.Pending() != 0 {
			return false
		}
	}
	return true
}

// VerifyExactlyOnce asserts the end-to-end routing invariant over the
// whole scenario so far: every publication was delivered exactly once
// to each subscription in its expected set, and never to any other.
// Call after Settle.
func (c *Cluster) VerifyExactlyOnce() {
	c.tb.Helper()
	for _, p := range c.pubs {
		for _, s := range c.subs {
			want := 0
			if p.Expected[s] {
				want = 1
			}
			got := c.Brokers[s.BrokerIdx].rec.count(s.Client, s.ID, p.Seq)
			if got != want {
				c.tb.Errorf("pub %d (from %s): subscriber %s/sub %d on %s delivered %d times, want %d",
					p.Seq, c.Brokers[p.Origin].Name, s.Client, s.ID, c.Brokers[s.BrokerIdx].Name, got, want)
			}
		}
	}
}

// VerifyAtLeastOnce asserts the durable delivery invariant over the
// whole scenario so far: every publication reached each DURABLE
// subscription in its expected set at least once — gaps are fatal,
// duplicates are allowed and returned (the price of at-least-once) —
// and durable subscriptions outside the expected set received nothing.
// Non-durable subscriptions are not checked; use VerifyExactlyOnce in
// scenarios without faults. Call after Settle.
func (c *Cluster) VerifyAtLeastOnce() (duplicates int) {
	c.tb.Helper()
	for _, p := range c.pubs {
		for _, s := range c.subs {
			if !s.Durable {
				continue
			}
			got := c.Brokers[s.BrokerIdx].rec.count(s.Client, s.ID, p.Seq)
			if p.Expected[s] {
				if got == 0 {
					c.tb.Errorf("pub %d (from %s): durable subscriber %s/sub %d on %s NEVER delivered (gap)",
						p.Seq, c.Brokers[p.Origin].Name, s.Client, s.ID, c.Brokers[s.BrokerIdx].Name)
				}
				duplicates += got - 1
			} else if got != 0 {
				c.tb.Errorf("pub %d (from %s): durable subscriber %s/sub %d on %s delivered %d times, want 0",
					p.Seq, c.Brokers[p.Origin].Name, s.Client, s.ID, c.Brokers[s.BrokerIdx].Name, got)
			}
		}
	}
	return duplicates
}

// VerifyTraceComplete asserts the observability invariant (DESIGN §10)
// for every publication whose delivery window was fault-free: the
// ORIGIN broker's tracer must hold the full span chain — publish,
// journal_append and match at the origin, a match and recv span from
// every remote broker expected to deliver, a forward span launching
// the publication into the overlay when remote delivery was expected,
// and one deliver span per expected subscription (reported back along
// the reverse forwarding path). Publications straddling a fault
// injection are skipped: trace state is deliberately in-memory and
// dies with its process. Returns how many publications were checked
// strictly and how many were exempted. Call after Settle.
func (c *Cluster) VerifyTraceComplete() (checked, skipped int) {
	c.tb.Helper()
	for _, p := range c.pubs {
		if p.ID == "" || p.faultSeq != c.faultSeq {
			skipped++
			continue
		}
		checked++
		origin := c.Brokers[p.Origin]
		spans := origin.B.Tracer().Spans(p.ID)
		if len(spans) == 0 {
			c.tb.Errorf("pub %d (%s): origin %s holds no trace", p.Seq, p.ID, origin.Name)
			continue
		}
		type kb struct{ kind, broker string }
		have := make(map[kb]bool, len(spans))
		type del struct {
			client string
			id     message.SubID
		}
		delivered := make(map[del]bool)
		forwards := 0
		for _, s := range spans {
			have[kb{s.Kind, s.Broker}] = true
			switch s.Kind {
			case trace.KindDeliver:
				delivered[del{s.Sub, message.SubID(s.SubID)}] = true
			case trace.KindForward:
				forwards++
			}
		}
		for _, kind := range []string{trace.KindPublish, trace.KindJournal, trace.KindMatch} {
			if !have[kb{kind, origin.Name}] {
				c.tb.Errorf("pub %d (%s): origin %s trace lacks a %s span (have %v)",
					p.Seq, p.ID, origin.Name, kind, spans)
			}
		}
		remote := false
		for s := range p.Expected {
			if !delivered[del{s.Client, s.ID}] {
				c.tb.Errorf("pub %d (%s): no deliver span for %s/sub %d on %s",
					p.Seq, p.ID, s.Client, s.ID, c.Brokers[s.BrokerIdx].Name)
			}
			if s.BrokerIdx == p.Origin {
				continue
			}
			remote = true
			name := c.Brokers[s.BrokerIdx].Name
			for _, kind := range []string{trace.KindRecv, trace.KindMatch} {
				if !have[kb{kind, name}] {
					c.tb.Errorf("pub %d (%s): delivering broker %s contributed no %s span",
						p.Seq, p.ID, name, kind)
				}
			}
		}
		if remote && forwards == 0 {
			c.tb.Errorf("pub %d (%s): remote delivery expected but the trace has no forward span", p.Seq, p.ID)
		}
	}
	return checked, skipped
}

// reachable returns the set of broker indexes reachable from origin
// over live links (always including origin: local delivery needs no
// overlay).
func (c *Cluster) reachable(origin int) map[int]bool {
	adj := make(map[int][]int)
	for e := range c.live {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	seen := map[int]bool{origin: true}
	queue := []int{origin}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range adj[cur] {
			if !seen[next] {
				seen[next] = true
				queue = append(queue, next)
			}
		}
	}
	return seen
}

func edge(i, j int) [2]int {
	if i > j {
		i, j = j, i
	}
	return [2]int{i, j}
}

// recorder is the notification transport of simulated brokers: it
// counts deliveries keyed by subscriber, subscription and publication
// sequence. It can be switched offline to model subscriber endpoints
// going away (deliveries fail until it returns).
type recorder struct {
	mu      sync.Mutex
	counts  map[deliveryKey]int
	offline bool
}

type deliveryKey struct {
	subscriber string
	id         message.SubID
	seq        int
}

func newRecorder() *recorder {
	return &recorder{counts: make(map[deliveryKey]int)}
}

func (r *recorder) Name() string { return "sim" }

func (r *recorder) Send(_ string, n notify.Notification) error {
	seq := -1
	if v, ok := n.Event.Get(seqAttr); ok {
		seq = int(v.IntVal())
	}
	r.mu.Lock()
	if r.offline {
		r.mu.Unlock()
		return errEndpointOffline
	}
	r.counts[deliveryKey{n.Subscriber, n.SubID, seq}]++
	r.mu.Unlock()
	return nil
}

var errEndpointOffline = errors.New("sim: subscriber endpoint offline")

func (r *recorder) setOffline(v bool) {
	r.mu.Lock()
	r.offline = v
	r.mu.Unlock()
}

func (r *recorder) Close() error { return nil }

func (r *recorder) count(subscriber string, id message.SubID, seq int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counts[deliveryKey{subscriber, id, seq}]
}
