package sim

import (
	"runtime"
	"testing"
	"time"

	"stopss/internal/message"
)

func ge(attr string, v int) message.Predicate {
	return message.Pred(attr, message.OpGe, message.Int(int64(v)))
}

// remote sums one RemoteStats field over all brokers.
func (c *Cluster) remote(f func(b *Broker) uint64) uint64 {
	var total uint64
	for _, b := range c.Brokers {
		if !b.crashed {
			total += f(b)
		}
	}
	return total
}

// TestLineCoveringReissue replays the covering scenario on the sim
// fabric: on a 4-broker line, a broad subscription at b1 covers a
// narrow one from b3 on the b1→b0 link; pruning must never suppress a
// delivery, and withdrawing the coverer must reissue the covered
// route.
func TestLineCoveringReissue(t *testing.T) {
	c := NewCluster(t, 4)
	c.Wire(Line(4))

	broad := c.Subscribe(1, ge("x", 0))
	c.Subscribe(3, ge("x", 10))
	c.Settle()

	if got := c.Brokers[1].B.Stats().Remote.SubsPruned; got < 1 {
		t.Fatalf("b01 pruned %d subscriptions, want >=1 (broad covers narrow toward b00)", got)
	}

	// Both publications enter at b0, behind the pruned link: covering
	// must still route them to everyone entitled.
	c.Publish(0, "x", 5)  // matches broad only
	c.Publish(0, "x", 42) // matches both
	c.Settle()
	c.VerifyExactlyOnce()

	// Withdrawing the coverer must reissue the narrow route to b0 …
	c.Unsubscribe(broad)
	c.Settle()
	if got := c.Brokers[1].B.Stats().Remote.SubsReissued; got < 1 {
		t.Fatalf("b01 reissued %d subscriptions, want >=1 after the coverer withdrew", got)
	}
	// … so post-withdrawal publications still reach the narrow
	// subscriber (and nobody else).
	c.Publish(0, "x", 99) // narrow only (broad is gone)
	c.Publish(0, "x", 5)  // matches nothing now
	c.Settle()
	c.VerifyExactlyOnce()
}

// TestRingExactlyOnce: a cycle gives every publication two paths to
// each subscriber; duplicate suppression must reduce that to exactly
// one delivery.
func TestRingExactlyOnce(t *testing.T) {
	c := NewCluster(t, 5)
	c.Wire(Ring(5))

	c.Subscribe(0, ge("x", 0))
	c.Subscribe(2, ge("x", 50))
	c.Subscribe(3, message.Pred("y", message.OpEq, message.String("jobs")))
	c.Settle()

	for i := 0; i < 5; i++ {
		c.Publish(i, "x", i*25)
		c.Publish(i, "y", "jobs")
	}
	c.Settle()
	c.VerifyExactlyOnce()

	if got := c.remote(func(b *Broker) uint64 { return b.B.Stats().Remote.PubsDeduped }); got == 0 {
		t.Fatal("no duplicate publications suppressed in a cyclic topology")
	}
}

// TestStarFanout: hub-and-spoke with subscribers on every leaf; the
// hub must fan each publication out only to matching leaves.
func TestStarFanout(t *testing.T) {
	c := NewCluster(t, 8)
	c.Wire(Star(8))

	for i := 1; i < 8; i++ {
		c.Subscribe(i, ge("x", i*10))
	}
	c.Settle()

	c.Publish(0, "x", 35)  // leaves 1..3
	c.Publish(4, "x", 100) // everyone
	c.Publish(7, "x", 0)   // no one
	c.Settle()
	c.VerifyExactlyOnce()
}

// TestCrashRejoinPublishes guards the publication-ID epoch: a node
// that crashes and rejoins restarts its sequence numbers, and its
// fresh publications must not be swallowed by dedup state peers retain
// from its previous incarnation.
func TestCrashRejoinPublishes(t *testing.T) {
	c := NewCluster(t, 2)
	c.Wire(Line(2))

	c.Subscribe(1, ge("x", 0))
	c.Settle()

	for i := 0; i < 3; i++ {
		c.Publish(0, "x", i)
	}
	c.Settle()

	c.Crash(0)
	c.Rejoin(0)

	// Sequence numbers 1..3 are reused by the new incarnation; each
	// must still be delivered.
	for i := 0; i < 3; i++ {
		c.Publish(0, "x", 100+i)
	}
	c.Settle()
	c.VerifyExactlyOnce()
}

// TestSlowLinkShedsPeer stalls one direction of a link so the peer
// stops draining: the sender's bounded write queue must fill and the
// overlay must sacrifice the link rather than block, leaving the
// sender fully functional for local work.
func TestSlowLinkShedsPeer(t *testing.T) {
	c := NewCluster(t, 2)
	c.Wire(Line(2))

	c.Subscribe(1, ge("x", 0))
	c.Settle()

	c.Net.Stall("b00", "b01", true)
	// Each publication queues one frame toward the stalled peer. Total
	// buffering between sender and stalled stream (bounded queue of
	// 1024 + the writer's bufio batch) is far below 2000, so the queue
	// MUST overflow within the loop and slow-peer protection MUST close
	// the link — no timers involved.
	for i := 0; i < 2000; i++ {
		if _, err := c.Brokers[0].B.Publish(message.E("x", i)); err != nil {
			t.Fatal(err)
		}
	}
	// The close is observed by the link's reader, which detaches it
	// asynchronously; yield until the peer list reflects it.
	deadline := time.Now().Add(10 * time.Second)
	for len(c.Brokers[0].Node.Peers()) > 0 {
		if time.Now().After(deadline) {
			t.Fatal("stalled link was never sacrificed; slow-peer protection is broken")
		}
		runtime.Gosched()
	}
	c.Net.Stall("b00", "b01", false)
	c.Settle()

	// The sender sheds the peer but keeps serving local subscribers.
	c.Subscribe(0, ge("z", 0))
	res, err := c.Brokers[0].B.Publish(message.E("z", 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Notified != 1 {
		t.Fatalf("local delivery after shedding the peer: notified %d, want 1", res.Notified)
	}
}

// TestMeshFaultScenario is the acceptance scenario: a 16-broker random
// mesh runs subscriptions with covering overlap, then survives a
// partition, a heal, a subscription withdrawal, and a broker
// crash/rejoin — asserting after every phase that each matching
// subscriber received each publication exactly once.
func TestMeshFaultScenario(t *testing.T) {
	const n = 16
	c := NewCluster(t, n)
	c.Wire(Mesh(n, 8, 42))

	// Nested x-thresholds force covering pruning; y-equality subs add
	// disjoint interest; a between adds a bounded range.
	broad := c.Subscribe(0, ge("x", 0))
	for i := 2; i < n; i += 2 {
		c.Subscribe(i, ge("x", i*6))
	}
	c.Subscribe(3, message.Pred("y", message.OpEq, message.String("jobs")))
	c.Subscribe(9, message.Pred("y", message.OpEq, message.String("talks")))
	c.Subscribe(5, message.Between("x", message.Int(20), message.Int(40)))
	c.Settle()

	if got := c.remote(func(b *Broker) uint64 { return b.B.Stats().Remote.SubsPruned }); got == 0 {
		t.Fatal("no covering pruning in a mesh with nested subscriptions")
	}

	// Round 1: healthy mesh.
	for i := 0; i < n; i += 3 {
		c.Publish(i, "x", (i*17)%97)
	}
	c.Publish(1, "y", "jobs")
	c.Settle()
	c.VerifyExactlyOnce()

	// Round 2: partition into two halves; deliveries stay within each
	// side (Publish freezes per-publication reachability).
	c.Partition(0, 1, 2, 3, 4, 5, 6, 7)
	c.Publish(2, "x", 33)
	c.Publish(12, "x", 80)
	c.Publish(9, "y", "talks")
	c.Settle()
	c.VerifyExactlyOnce()

	// Round 3: heal, withdraw the broadest subscription (uncovering
	// everything it suppressed), publish again.
	c.Heal()
	c.Unsubscribe(broad)
	c.Settle()
	c.Publish(7, "x", 90)
	c.Publish(0, "x", 25)
	c.Settle()
	c.VerifyExactlyOnce()

	// Round 4: crash a broker holding a subscription; it becomes
	// unreachable (its own local deliveries still work).
	c.Crash(5)
	c.Publish(0, "x", 30) // in 5's between-range, but 5 is down
	c.Publish(5, "x", 30) // local-only delivery at the crashed broker
	c.Settle()
	c.VerifyExactlyOnce()

	// Round 5: rejoin and publish both from and toward the rejoined
	// broker.
	c.Rejoin(5)
	c.Publish(5, "x", 95)
	c.Publish(10, "x", 22)
	c.Settle()
	c.VerifyExactlyOnce()

	if got := c.remote(func(b *Broker) uint64 { return b.B.Stats().Remote.PubsDeduped }); got == 0 {
		t.Fatal("no duplicates suppressed across a cyclic mesh scenario")
	}
}
