// Package trace implements per-publication distributed tracing across
// the whole S-ToPSS delivery path (DESIGN.md §10).
//
// Every publication a broker accepts is assigned a federation-unique
// trace ID — its publication ID `broker#epoch/seq`, the same identity
// the overlay already uses for duplicate suppression. Each stage the
// publication passes through (publish admission, journal append, shard
// match, per-link forward, remote receive, terminal deliver/ack or
// dead-letter) records a Span against that ID. Spans travel with the
// publication: overlay pub frames carry the accumulated span records
// of every broker already visited, and terminal delivery outcomes on a
// remote broker are reported BACK along the reverse forwarding path,
// so the publishing broker (and every broker en route) ends up holding
// the assembled span tree. `GET /api/trace/<pubID>` serves it.
//
// Traces live in a bounded in-memory ring with head-based sampling:
// the origin broker decides at publish time whether a publication is
// traced (keep 1 in Config.Sample), and downstream brokers inherit the
// decision through the presence of span records on the frame.
// Retry-exhausted and dead-lettered deliveries are ALWAYS kept — a
// failed delivery forces a (possibly partial) trace into a separate
// ring that ordinary churn cannot evict — because the slowest and the
// failing deliveries are exactly the ones worth inspecting.
//
// The tracer doubles as the per-stage latency instrumentation point:
// every span boundary feeds a stage histogram (match ns, journal
// append+commit ns, end-to-end publish→ack, …) in the tracer's metrics
// registry, which the Prometheus exposition handler (/metrics) renders.
package trace

import (
	cryptorand "crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"stopss/internal/metrics"
)

// Span kinds, in rough delivery-path order.
const (
	KindPublish     = "publish"        // publication admitted at its origin broker
	KindJournal     = "journal_append" // journal append + group commit
	KindMatch       = "match"          // engine matching (semantic expansion + index probe)
	KindForward     = "forward"        // frame enqueued toward a peer (Link = peer)
	KindRecv        = "recv"           // publication accepted from a peer (Link = peer)
	KindDeliver     = "deliver"        // notification acknowledged by the subscriber transport
	KindDeadLetter  = "dead_letter"    // retries exhausted, parked on the dead-letter list
	KindPark        = "park"           // durable delivery parked for journal replay
	KindReplay      = "replay"         // notification re-dispatched by catch-up replay
	KindUndeliverab = "undeliverable"  // no route for a non-durable match
)

// Span is one timed step of a publication's journey. Broker+Seq
// identify a span federation-wide (Seq is per-tracer monotonic), which
// is what makes merging span sets from frames and reports idempotent.
type Span struct {
	Broker string    `json:"broker"`
	Seq    uint64    `json:"seq"`
	Kind   string    `json:"kind"`
	Start  time.Time `json:"start"`
	Dur    int64     `json:"dur_ns,omitempty"`
	Link   string    `json:"link,omitempty"`   // peer name for forward/recv
	Sub    string    `json:"sub,omitempty"`    // subscriber for delivery outcomes
	SubID  uint64    `json:"sub_id,omitempty"` // subscription for delivery outcomes
	Err    string    `json:"err,omitempty"`
}

func (s Span) key() string { return s.Broker + "\x00" + strconv.FormatUint(s.Seq, 10) }

// Config tunes a tracer.
type Config struct {
	// Broker is the identity stamped on every local span and into
	// minted publication IDs. Must be federation-unique (use the
	// overlay node name); empty generates a random identity.
	Broker string
	// Sample keeps 1 in Sample publications (head-based, decided at
	// publish admission on the origin broker). 0 (the zero value)
	// defaults to 1, tracing everything; a negative value disables
	// tracing entirely — publication IDs are still minted (the overlay
	// needs them for dedup), but no spans are recorded except forced
	// dead-letter/park traces.
	Sample int
	// Capacity bounds the ring of recent traces (default 1024). The
	// forced ring (dead-lettered/parked deliveries) holds up to
	// Capacity/4 extra traces.
	Capacity int
	// Registry receives the per-stage latency histograms; nil
	// allocates a private one.
	Registry *metrics.Registry
}

// Reporter carries a completed local delivery outcome toward the
// publication's origin. The overlay node installs one that sends a
// trace report frame on the upstream link; spans is the tracer's full
// current span set for the publication. Called synchronously from
// delivery worker goroutines — implementations must not block.
type Reporter func(pubID, upstream string, spans []Span)

// Stats summarizes tracer activity.
type Stats struct {
	Stamped    uint64 `json:"stamped"`     // publications stamped (traced)
	SampledOut uint64 `json:"sampled_out"` // publications skipped by head sampling
	Spans      uint64 `json:"spans"`       // local spans recorded
	Merged     uint64 `json:"merged"`      // remote spans merged from frames/reports
	Evicted    uint64 `json:"evicted"`     // traces dropped by the ring bound
	Forced     uint64 `json:"forced"`      // traces pinned by a failed delivery
	Held       int    `json:"held"`        // traces currently in memory
}

// pubTrace is one publication's accumulated state.
type pubTrace struct {
	spans    []Span
	seen     map[string]bool // span identity set (dedup across frames/reports)
	upstream string          // peer the publication arrived from ("" at origin)
	start    time.Time       // publish/recv time, for the end-to-end histogram
	origin   bool            // minted here (publish→ack observed here)
	forced   bool            // pinned in the forced ring
}

// Tracer collects spans for recent publications on one broker.
type Tracer struct {
	broker string
	epoch  string
	sample int
	cap    int

	pubSeq atomic.Uint64 // publication IDs

	mu       sync.Mutex
	spanSeq  uint64
	traces   map[string]*pubTrace
	ring     []string // eviction order for unforced traces
	forcedQ  []string // eviction order for forced traces
	reporter Reporter
	stats    Stats

	reg        *metrics.Registry
	hMatch     *metrics.Histogram
	hJournal   *metrics.Histogram
	hPublish   *metrics.Histogram
	hDeliver   *metrics.Histogram
	hEndToEnd  *metrics.Histogram
	cSpans     *metrics.Counter
	cSampled   *metrics.Counter
	cSampleOut *metrics.Counter
}

// New builds a tracer.
func New(cfg Config) *Tracer {
	if cfg.Broker == "" {
		cfg.Broker = "broker-" + newEpoch()
	}
	switch {
	case cfg.Sample == 0:
		cfg.Sample = 1 // zero value: trace everything
	case cfg.Sample < 0:
		cfg.Sample = 0 // explicit off
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 1024
	}
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Tracer{
		broker: cfg.Broker,
		epoch:  newEpoch(),
		sample: cfg.Sample,
		cap:    cfg.Capacity,
		traces: make(map[string]*pubTrace),
		reg:    reg,

		hMatch:     reg.Histogram("stage.match"),
		hJournal:   reg.Histogram("stage.journal_append"),
		hPublish:   reg.Histogram("stage.publish"),
		hDeliver:   reg.Histogram("stage.deliver"),
		hEndToEnd:  reg.Histogram("stage.publish_to_ack"),
		cSpans:     reg.Counter("trace.spans"),
		cSampled:   reg.Counter("trace.stamped"),
		cSampleOut: reg.Counter("trace.sampled_out"),
	}
}

// Broker returns the tracer's broker identity.
func (t *Tracer) Broker() string { return t.broker }

// Registry exposes the tracer's metrics registry (stage histograms).
func (t *Tracer) Registry() *metrics.Registry { return t.reg }

// SetReporter installs (or clears, with nil) the upstream report hook.
func (t *Tracer) SetReporter(r Reporter) {
	t.mu.Lock()
	t.reporter = r
	t.mu.Unlock()
}

// NewPubID mints the next publication ID, `broker#epoch/seq`. The
// epoch separates tracer incarnations so a restarted broker's fresh
// IDs never collide with its previous life's.
func (t *Tracer) NewPubID() string {
	return t.broker + "#" + t.epoch + "/" + strconv.FormatUint(t.pubSeq.Add(1), 10)
}

// StampLocal starts a trace for a locally published event and reports
// whether it is sampled. Unsampled publications record nothing (until
// a failed delivery forces a partial trace).
func (t *Tracer) StampLocal(pubID string, start time.Time) bool {
	if t.sample == 0 || (t.sample > 1 && t.pubSeq.Load()%uint64(t.sample) != 0) {
		t.cSampleOut.Inc()
		t.mu.Lock()
		t.stats.SampledOut++
		t.mu.Unlock()
		return false
	}
	t.cSampled.Inc()
	t.mu.Lock()
	t.insertLocked(pubID, &pubTrace{seen: make(map[string]bool), start: start, origin: true})
	t.stats.Stamped++
	t.mu.Unlock()
	return true
}

// StampRemote starts a trace for a publication that arrived from a
// peer, merging the span records the frame carried. The sampling
// decision is inherited: a frame without spans means the origin
// sampled the publication out, and no trace is created.
func (t *Tracer) StampRemote(pubID, upstream string, spans []Span, start time.Time) bool {
	if len(spans) == 0 {
		return false
	}
	t.mu.Lock()
	pt := &pubTrace{seen: make(map[string]bool), upstream: upstream, start: start}
	t.insertLocked(pubID, pt)
	t.mergeLocked(pt, spans)
	t.stats.Stamped++
	t.mu.Unlock()
	t.cSampled.Inc()
	return true
}

// insertLocked registers a fresh trace under pubID, evicting the
// oldest unforced trace past capacity. Callers hold t.mu.
func (t *Tracer) insertLocked(pubID string, pt *pubTrace) {
	if _, dup := t.traces[pubID]; dup {
		return // raced re-stamp; keep the original
	}
	t.traces[pubID] = pt
	t.ring = append(t.ring, pubID)
	for len(t.ring) > t.cap {
		old := t.ring[0]
		t.ring = t.ring[1:]
		if got := t.traces[old]; got != nil && !got.forced {
			delete(t.traces, old)
			t.stats.Evicted++
		}
	}
}

// Traced reports whether pubID has an active trace.
func (t *Tracer) Traced(pubID string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.traces[pubID] != nil
}

// Upstream returns the peer a traced publication arrived from ("" for
// local origin or unknown publications).
func (t *Tracer) Upstream(pubID string) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if pt := t.traces[pubID]; pt != nil {
		return pt.upstream
	}
	return ""
}

// Observe records one local span against pubID (no-op when the
// publication is not traced) and feeds the matching stage histogram
// regardless — per-stage latency is collected even for sampled-out
// publications, so sampling does not bias the histograms.
func (t *Tracer) Observe(pubID, kind string, start time.Time, dur time.Duration) {
	t.observeStage(kind, dur)
	t.addSpan(pubID, Span{Kind: kind, Start: start, Dur: int64(dur)}, false)
}

// Forward records a forward span toward the named peer. Duration is
// unknown at enqueue time (the frame leaves on the writer goroutine);
// the per-link queue-wait histogram covers it instead.
func (t *Tracer) Forward(pubID, peer string, start time.Time) {
	t.addSpan(pubID, Span{Kind: KindForward, Start: start, Link: peer}, false)
}

// Recv records the acceptance of a remote publication from a peer.
func (t *Tracer) Recv(pubID, peer string, start time.Time) {
	t.addSpan(pubID, Span{Kind: KindRecv, Start: start, Link: peer}, false)
}

// Outcome records a terminal delivery outcome span for one
// subscription and triggers the upstream reporter for remote-origin
// publications. Failed outcomes (dead_letter, park, undeliverable)
// force-keep the trace even when the publication was sampled out.
func (t *Tracer) Outcome(pubID, kind string, sub string, subID uint64, start time.Time, dur time.Duration, errMsg string) {
	if kind == KindDeliver {
		t.hDeliver.Observe(dur)
	}
	forced := kind == KindDeadLetter || kind == KindPark || kind == KindUndeliverab
	t.addSpan(pubID, Span{Kind: kind, Start: start, Dur: int64(dur), Sub: sub, SubID: subID, Err: errMsg}, forced)

	// End-to-end publish→ack on the origin broker, and the upstream
	// report everywhere else.
	t.mu.Lock()
	pt := t.traces[pubID]
	if pt == nil {
		t.mu.Unlock()
		return
	}
	if pt.origin && kind == KindDeliver {
		t.mu.Unlock()
		t.hEndToEnd.Observe(time.Since(pt.start))
		t.mu.Lock()
		pt = t.traces[pubID]
		if pt == nil {
			t.mu.Unlock()
			return
		}
	}
	rep := t.reporter
	upstream := pt.upstream
	var spans []Span
	if rep != nil && upstream != "" {
		spans = append(spans, pt.spans...)
	}
	t.mu.Unlock()
	if rep != nil && upstream != "" {
		rep(pubID, upstream, spans)
	}
}

// addSpan appends one local span. force creates a partial trace for
// unknown publications (the always-keep path for failed deliveries).
func (t *Tracer) addSpan(pubID string, s Span, force bool) {
	if pubID == "" {
		return
	}
	s.Broker = t.broker
	t.mu.Lock()
	pt := t.traces[pubID]
	if pt == nil {
		if !force {
			t.mu.Unlock()
			return
		}
		pt = &pubTrace{seen: make(map[string]bool), start: s.Start}
		t.insertLocked(pubID, pt)
		t.stats.Stamped++
	}
	if force && !pt.forced {
		pt.forced = true
		t.stats.Forced++
		t.forcedQ = append(t.forcedQ, pubID)
		// The forced ring is bounded too: past cap/4 the oldest forced
		// trace loses its pin and ordinary eviction can reclaim it.
		for len(t.forcedQ) > t.cap/4+1 {
			old := t.forcedQ[0]
			t.forcedQ = t.forcedQ[1:]
			if got := t.traces[old]; got != nil {
				got.forced = false
			}
		}
	}
	t.spanSeq++
	s.Seq = t.spanSeq
	pt.spans = append(pt.spans, s)
	pt.seen[s.key()] = true
	t.stats.Spans++
	t.mu.Unlock()
	t.cSpans.Inc()
}

// Merge folds remote spans (from a pub frame or a trace report) into
// pubID's trace. It reports whether any span was new. Unknown
// publications are ignored (evicted or sampled out locally).
func (t *Tracer) Merge(pubID string, spans []Span) bool {
	t.mu.Lock()
	pt := t.traces[pubID]
	if pt == nil {
		t.mu.Unlock()
		return false
	}
	changed, acks := t.mergeLocked(pt, spans)
	origin, start := pt.origin, pt.start
	t.mu.Unlock()
	// A deliver span reported back from a remote broker closes the
	// publish→ack window at the origin, same as a local delivery.
	if origin {
		for range acks {
			t.hEndToEnd.Observe(time.Since(start))
		}
	}
	return changed
}

// mergeLocked folds the new spans in and returns the newly-merged
// remote deliver spans (the origin's end-to-end accounting).
func (t *Tracer) mergeLocked(pt *pubTrace, spans []Span) (bool, []Span) {
	changed := false
	var acks []Span
	for _, s := range spans {
		if s.Broker == "" || pt.seen[s.key()] {
			continue
		}
		pt.seen[s.key()] = true
		pt.spans = append(pt.spans, s)
		t.stats.Merged++
		changed = true
		if s.Kind == KindDeliver {
			acks = append(acks, s)
		}
	}
	return changed, acks
}

// Spans returns a copy of pubID's span set, ordered by start time
// (ties broken by broker and span seq for determinism).
func (t *Tracer) Spans(pubID string) []Span {
	t.mu.Lock()
	pt := t.traces[pubID]
	var out []Span
	if pt != nil {
		out = append(out, pt.spans...)
	}
	t.mu.Unlock()
	sortSpans(out)
	return out
}

func sortSpans(out []Span) {
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		if out[i].Broker != out[j].Broker {
			return out[i].Broker < out[j].Broker
		}
		return out[i].Seq < out[j].Seq
	})
}

// Stats snapshots tracer counters.
func (t *Tracer) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.stats
	s.Held = len(t.traces)
	return s
}

// StageSnapshot reports the main stage histograms for broker.Stats.
type StageSnapshot struct {
	Match        metrics.Snapshot `json:"match"`
	Journal      metrics.Snapshot `json:"journal_append"`
	Publish      metrics.Snapshot `json:"publish"`
	Deliver      metrics.Snapshot `json:"deliver"`
	PublishToAck metrics.Snapshot `json:"publish_to_ack"`
}

// Stages snapshots the per-stage latency histograms.
func (t *Tracer) Stages() StageSnapshot {
	return StageSnapshot{
		Match:        t.hMatch.Snapshot(),
		Journal:      t.hJournal.Snapshot(),
		Publish:      t.hPublish.Snapshot(),
		Deliver:      t.hDeliver.Snapshot(),
		PublishToAck: t.hEndToEnd.Snapshot(),
	}
}

func (t *Tracer) observeStage(kind string, dur time.Duration) {
	switch kind {
	case KindMatch:
		t.hMatch.Observe(dur)
	case KindJournal:
		t.hJournal.Observe(dur)
	case KindPublish:
		t.hPublish.Observe(dur)
	}
}

// newEpoch returns an 8-hex-char incarnation tag (mirrors the overlay
// node's publication epoch; falls back to a process counter without an
// entropy source).
func newEpoch() string {
	var b [4]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		return fmt.Sprintf("e%d", epochFallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}

var epochFallback atomic.Uint64
