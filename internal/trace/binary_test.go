package trace

import (
	"encoding/json"
	"testing"
	"time"

	"stopss/internal/message"
)

func TestSpanBinaryRoundTrip(t *testing.T) {
	start := time.Date(2026, 8, 8, 12, 30, 0, 987654321, time.UTC)
	spans := []Span{
		{Broker: "a", Seq: 1, Kind: KindPublish, Start: start},
		{Broker: "a", Seq: 2, Kind: KindMatch, Start: start.Add(time.Millisecond), Dur: 42},
		{Broker: "a", Seq: 3, Kind: KindForward, Start: start.Add(2 * time.Millisecond), Link: "b"},
		{Broker: "b", Seq: 1, Kind: KindRecv, Start: start.Add(3 * time.Millisecond), Link: "a"},
		{Broker: "b", Seq: 2, Kind: KindDeliver, Start: start.Add(4 * time.Millisecond), Dur: 9000, Sub: "client", SubID: 7},
		{Broker: "b", Seq: 3, Kind: KindDeadLetter, Start: start.In(time.FixedZone("X", 3600)), Err: "dial refused"},
	}

	var w message.BWriter
	w.Dict = message.NewIntern()
	AppendSpans(&w, spans)
	got, err := ReadSpans(message.NewBReader(w.Buf, message.NewIntern()))
	if err != nil {
		t.Fatal(err)
	}

	// The JSON rendering is the reference representation: binary decode
	// must be indistinguishable from a JSON round trip (FuzzFrame in the
	// overlay pins the same property end to end).
	wantJS, _ := json.Marshal(spans)
	gotJS, _ := json.Marshal(got)
	if string(wantJS) != string(gotJS) {
		t.Fatalf("round trip mismatch:\n  sent %s\n  got  %s", wantJS, gotJS)
	}
}

func TestSpanBinaryEmpty(t *testing.T) {
	var w message.BWriter
	AppendSpans(&w, nil)
	got, err := ReadSpans(message.NewBReader(w.Buf, nil))
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatalf("want nil span list, got %v", got)
	}
}

func TestSpanBinaryErrors(t *testing.T) {
	// Truncated input at every prefix of a valid encoding must error,
	// never panic or succeed.
	var w message.BWriter
	AppendSpans(&w, []Span{{Broker: "a", Seq: 1, Kind: KindPublish, Start: time.Now(), Err: "boom"}})
	for i := 0; i < len(w.Buf); i++ {
		if _, err := ReadSpans(message.NewBReader(w.Buf[:i], nil)); err == nil {
			t.Fatalf("prefix of %d bytes decoded without error", i)
		}
	}

	// A huge claimed count must be rejected before allocation.
	var h message.BWriter
	h.Uvarint(1 << 40)
	if _, err := ReadSpans(message.NewBReader(h.Buf, nil)); err == nil {
		t.Fatal("oversized span count accepted")
	}

	// A garbage timestamp must be rejected.
	var g message.BWriter
	g.Uvarint(1)
	g.String("a")   // broker
	g.Uvarint(1)    // seq
	g.String("pub") // kind
	g.RawString("not-a-time")
	if _, err := ReadSpans(message.NewBReader(g.Buf, nil)); err == nil {
		t.Fatal("garbage timestamp accepted")
	}
}
