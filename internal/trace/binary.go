package trace

import (
	"fmt"
	"time"

	"stopss/internal/message"
)

// Binary span codec for the overlay's compact framing. Broker, kind,
// link and subscriber names recur heavily across a link's lifetime and
// go through the interning dictionary; Seq does not (varint), and the
// start time is encoded as its RFC 3339 text form — the same rendering
// encoding/json uses — so a span survives binary→struct→JSON→struct
// round trips byte-identically (the cross-codec fuzz target relies on
// this; an integer-nanoseconds encoding would lose the original
// location rendering).

// AppendSpans encodes spans onto w.
func AppendSpans(w *message.BWriter, spans []Span) {
	w.Uvarint(uint64(len(spans)))
	for _, s := range spans {
		w.String(s.Broker)
		w.Uvarint(s.Seq)
		w.String(s.Kind)
		ts, err := s.Start.MarshalText()
		if err != nil {
			// Out-of-range year; encode the zero time rather than
			// corrupting the stream (matches encoding/json, which
			// errors the whole frame — a drop either way).
			ts, _ = time.Time{}.MarshalText()
		}
		w.Uvarint(uint64(len(ts)))
		w.Buf = append(w.Buf, ts...)
		w.Varint(s.Dur)
		w.String(s.Link)
		w.String(s.Sub)
		w.Uvarint(s.SubID)
		w.RawString(s.Err)
	}
}

// ReadSpans decodes a span list encoded by AppendSpans.
func ReadSpans(r *message.BReader) ([]Span, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if n > uint64(r.Len()) { // each span costs well over one byte
		return nil, fmt.Errorf("trace: binary decode: span count %d exceeds input", n)
	}
	spans := make([]Span, 0, n)
	for i := uint64(0); i < n; i++ {
		var s Span
		if s.Broker, err = r.String(); err != nil {
			return nil, err
		}
		if s.Seq, err = r.Uvarint(); err != nil {
			return nil, err
		}
		if s.Kind, err = r.String(); err != nil {
			return nil, err
		}
		ts, err := r.RawString()
		if err != nil {
			return nil, err
		}
		if err := s.Start.UnmarshalText([]byte(ts)); err != nil {
			return nil, fmt.Errorf("trace: binary decode: bad span timestamp: %w", err)
		}
		if s.Dur, err = r.Varint(); err != nil {
			return nil, err
		}
		if s.Link, err = r.String(); err != nil {
			return nil, err
		}
		if s.Sub, err = r.String(); err != nil {
			return nil, err
		}
		if s.SubID, err = r.Uvarint(); err != nil {
			return nil, err
		}
		if s.Err, err = r.RawString(); err != nil {
			return nil, err
		}
		spans = append(spans, s)
	}
	return spans, nil
}
