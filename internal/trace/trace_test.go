package trace

import (
	"strings"
	"sync"
	"testing"
	"time"

	"stopss/internal/metrics"
)

func TestNewPubIDFormat(t *testing.T) {
	tr := New(Config{Broker: "b1"})
	id := tr.NewPubID()
	if !strings.HasPrefix(id, "b1#") || !strings.Contains(id, "/") {
		t.Fatalf("pub id %q not of form broker#epoch/seq", id)
	}
	if id2 := tr.NewPubID(); id2 == id {
		t.Fatalf("pub ids not unique: %q", id)
	}
}

func TestStampLocalRecordsSpans(t *testing.T) {
	tr := New(Config{Broker: "b1"})
	id := tr.NewPubID()
	if !tr.StampLocal(id, time.Now()) {
		t.Fatal("default sample=1 should trace everything")
	}
	tr.Observe(id, KindPublish, time.Now(), 10*time.Microsecond)
	tr.Observe(id, KindMatch, time.Now(), time.Microsecond)
	tr.Outcome(id, KindDeliver, "alice", 7, time.Now(), time.Millisecond, "")

	spans := tr.Spans(id)
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3: %+v", len(spans), spans)
	}
	kinds := map[string]bool{}
	for _, s := range spans {
		if s.Broker != "b1" {
			t.Fatalf("span broker %q, want b1", s.Broker)
		}
		kinds[s.Kind] = true
	}
	for _, k := range []string{KindPublish, KindMatch, KindDeliver} {
		if !kinds[k] {
			t.Fatalf("missing %s span: %+v", k, spans)
		}
	}
	st := tr.Stats()
	if st.Stamped != 1 || st.Spans != 3 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSampling(t *testing.T) {
	tr := New(Config{Broker: "b1", Sample: 3})
	kept := 0
	for i := 0; i < 30; i++ {
		id := tr.NewPubID()
		if tr.StampLocal(id, time.Now()) {
			kept++
		}
	}
	if kept != 10 {
		t.Fatalf("sample=3 kept %d of 30, want 10", kept)
	}

	off := New(Config{Broker: "b2", Sample: -1})
	id := off.NewPubID()
	if off.StampLocal(id, time.Now()) {
		t.Fatal("sample<0 must not trace")
	}
	off.Observe(id, KindPublish, time.Now(), time.Microsecond)
	if got := off.Spans(id); len(got) != 0 {
		t.Fatalf("sample off recorded spans: %+v", got)
	}
}

func TestStampRemoteInheritsSamplingDecision(t *testing.T) {
	tr := New(Config{Broker: "b2"})
	if tr.StampRemote("b1#e/1", "b1", nil, time.Now()) {
		t.Fatal("frame without spans means origin sampled out; must not trace")
	}
	carried := []Span{{Broker: "b1", Seq: 1, Kind: KindPublish, Start: time.Now()}}
	if !tr.StampRemote("b1#e/2", "b1", carried, time.Now()) {
		t.Fatal("frame with spans must be traced")
	}
	if up := tr.Upstream("b1#e/2"); up != "b1" {
		t.Fatalf("upstream %q, want b1", up)
	}
	spans := tr.Spans("b1#e/2")
	if len(spans) != 1 || spans[0].Broker != "b1" {
		t.Fatalf("carried spans not merged: %+v", spans)
	}
}

func TestMergeDedupsByBrokerSeq(t *testing.T) {
	tr := New(Config{Broker: "b1"})
	id := tr.NewPubID()
	tr.StampLocal(id, time.Now())
	remote := []Span{
		{Broker: "b2", Seq: 1, Kind: KindRecv, Start: time.Now()},
		{Broker: "b2", Seq: 2, Kind: KindDeliver, Start: time.Now()},
	}
	if !tr.Merge(id, remote) {
		t.Fatal("first merge should add spans")
	}
	if tr.Merge(id, remote) {
		t.Fatal("second merge of identical spans should be a no-op")
	}
	if got := len(tr.Spans(id)); got != 2 {
		t.Fatalf("got %d spans, want 2", got)
	}
	if tr.Merge("unknown#e/9", remote) {
		t.Fatal("merge into unknown pub must be ignored")
	}
}

func TestRemoteDeliverMergeClosesPublishToAck(t *testing.T) {
	tr := New(Config{Broker: "b1"})
	id := tr.NewPubID()
	tr.StampLocal(id, time.Now())
	// Two deliver spans reported back from remote brokers: each closes
	// one publish→ack window at the origin, dedup'd across re-reports.
	reported := []Span{
		{Broker: "b2", Seq: 1, Kind: KindDeliver, Start: time.Now()},
		{Broker: "b3", Seq: 1, Kind: KindDeliver, Start: time.Now()},
	}
	tr.Merge(id, reported)
	tr.Merge(id, reported)
	if got := tr.Stages().PublishToAck.Count; got != 2 {
		t.Fatalf("publish_to_ack count = %d, want 2 (one per remote deliver)", got)
	}

	// A non-origin broker merging the same report must not observe:
	// the window belongs to the publishing broker alone.
	mid := New(Config{Broker: "b2"})
	mid.StampRemote(id, "b1", []Span{{Broker: "b1", Seq: 1, Kind: KindPublish, Start: time.Now()}}, time.Now())
	mid.Merge(id, reported)
	if got := mid.Stages().PublishToAck.Count; got != 0 {
		t.Fatalf("non-origin publish_to_ack count = %d, want 0", got)
	}
}

func TestRingEviction(t *testing.T) {
	tr := New(Config{Broker: "b1", Capacity: 4})
	var ids []string
	for i := 0; i < 10; i++ {
		id := tr.NewPubID()
		tr.StampLocal(id, time.Now())
		ids = append(ids, id)
	}
	if tr.Traced(ids[0]) {
		t.Fatal("oldest trace should be evicted")
	}
	if !tr.Traced(ids[9]) {
		t.Fatal("newest trace should be held")
	}
	st := tr.Stats()
	if st.Held > 4 || st.Evicted == 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestFailedDeliveryForcesKeep(t *testing.T) {
	// Sampled-out publication: a dead-letter outcome must still
	// materialize a (partial) trace, and it must survive churn.
	tr := New(Config{Broker: "b1", Sample: -1, Capacity: 8})
	id := tr.NewPubID()
	tr.StampLocal(id, time.Now())
	tr.Outcome(id, KindDeadLetter, "bob", 3, time.Now(), time.Second, "conn refused")
	if !tr.Traced(id) {
		t.Fatal("dead-lettered delivery must force a trace")
	}
	// Churn far past capacity; the forced trace must remain.
	on := New(Config{Broker: "b1", Capacity: 8})
	fid := on.NewPubID()
	on.StampLocal(fid, time.Now())
	on.Outcome(fid, KindDeadLetter, "bob", 3, time.Now(), time.Second, "x")
	for i := 0; i < 100; i++ {
		id := on.NewPubID()
		on.StampLocal(id, time.Now())
	}
	if !on.Traced(fid) {
		t.Fatal("forced trace evicted by churn")
	}
	spans := on.Spans(fid)
	found := false
	for _, s := range spans {
		if s.Kind == KindDeadLetter && s.Err == "x" {
			found = true
		}
	}
	if !found {
		t.Fatalf("dead_letter span missing: %+v", spans)
	}
}

func TestReporterFiresForRemoteOrigin(t *testing.T) {
	tr := New(Config{Broker: "b2"})
	var mu sync.Mutex
	var gotPub, gotUp string
	var gotSpans []Span
	tr.SetReporter(func(pubID, upstream string, spans []Span) {
		mu.Lock()
		gotPub, gotUp, gotSpans = pubID, upstream, spans
		mu.Unlock()
	})

	carried := []Span{{Broker: "b1", Seq: 1, Kind: KindPublish, Start: time.Now()}}
	tr.StampRemote("b1#e/1", "b1", carried, time.Now())
	tr.Outcome("b1#e/1", KindDeliver, "alice", 1, time.Now(), time.Millisecond, "")

	mu.Lock()
	defer mu.Unlock()
	if gotPub != "b1#e/1" || gotUp != "b1" {
		t.Fatalf("report pub=%q up=%q", gotPub, gotUp)
	}
	if len(gotSpans) != 2 { // carried publish + local deliver
		t.Fatalf("report spans %+v", gotSpans)
	}

	// Local-origin outcomes must NOT fire the reporter.
	gotPub = ""
	lid := tr.NewPubID()
	tr.StampLocal(lid, time.Now())
	tr.Outcome(lid, KindDeliver, "alice", 1, time.Now(), time.Millisecond, "")
	if gotPub != "" {
		t.Fatal("reporter fired for local-origin publication")
	}
}

func TestStageHistogramsFeedEvenWhenSampledOut(t *testing.T) {
	tr := New(Config{Broker: "b1", Sample: -1})
	id := tr.NewPubID()
	tr.StampLocal(id, time.Now())
	tr.Observe(id, KindMatch, time.Now(), 5*time.Microsecond)
	tr.Observe(id, KindJournal, time.Now(), 50*time.Microsecond)
	st := tr.Stages()
	if st.Match.Count != 1 || st.Journal.Count != 1 {
		t.Fatalf("stage histograms not fed when sampled out: %+v", st)
	}
}

func TestSpansSortedByStart(t *testing.T) {
	tr := New(Config{Broker: "b1"})
	id := tr.NewPubID()
	tr.StampLocal(id, time.Now())
	base := time.Now()
	tr.Merge(id, []Span{
		{Broker: "b3", Seq: 1, Kind: KindDeliver, Start: base.Add(2 * time.Second)},
		{Broker: "b2", Seq: 1, Kind: KindRecv, Start: base.Add(time.Second)},
	})
	tr.Observe(id, KindPublish, base, time.Microsecond)
	spans := tr.Spans(id)
	if len(spans) != 3 || spans[0].Kind != KindPublish || spans[1].Kind != KindRecv || spans[2].Kind != KindDeliver {
		t.Fatalf("spans not start-ordered: %+v", spans)
	}
}

func TestConcurrentTracerUse(t *testing.T) {
	tr := New(Config{Broker: "b1", Capacity: 64, Registry: metrics.NewRegistry()})
	tr.SetReporter(func(string, string, []Span) {})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := tr.NewPubID()
				tr.StampLocal(id, time.Now())
				tr.Observe(id, KindMatch, time.Now(), time.Microsecond)
				tr.Forward(id, "peer", time.Now())
				tr.Outcome(id, KindDeliver, "s", 1, time.Now(), time.Microsecond, "")
				tr.Spans(id)
				tr.Stats()
			}
		}()
	}
	wg.Wait()
}
