package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"stopss/internal/message"
	"stopss/internal/notify"
)

// runT8 drives every notification transport with the same stream and
// reports throughput plus the engine's latency histogram — experiment T8
// (the right-hand side of Figure 2 under load).
func runT8(sc Scale) (string, error) {
	n := sc.size(5000)

	var received atomic.Int64
	count := func() { received.Add(1) }

	tcpSink, err := notify.NewTCPSink("127.0.0.1:0", func(notify.Notification) { count() })
	if err != nil {
		return "", err
	}
	defer tcpSink.Close()
	udpSink, err := notify.NewUDPSink("127.0.0.1:0", func(notify.Notification) { count() })
	if err != nil {
		return "", err
	}
	defer udpSink.Close()
	smtpSink, err := notify.NewSMTPSink("127.0.0.1:0", func(notify.Mail) { count() })
	if err != nil {
		return "", err
	}
	defer smtpSink.Close()
	sms := notify.NewSMSGateway(0, 0)

	routes := map[string]notify.Route{
		"tcp":  {Transport: "tcp", Addr: tcpSink.Addr()},
		"udp":  {Transport: "udp", Addr: udpSink.Addr()},
		"smtp": {Transport: "smtp", Addr: "hr@" + smtpSink.Addr()},
		"sms":  {Transport: "sms", Addr: "+1-416-555-0100"},
	}

	t := newTable("transport", "notifications", "wall time", "msgs/sec", "p50 latency", "p99 latency")
	for _, name := range []string{"tcp", "udp", "smtp", "sms"} {
		count := n
		if name == "smtp" {
			count = n / 10 // one full SMTP session per message is costly by design
			if count < 10 {
				count = 10
			}
		}
		eng, err := notify.NewEngine(notify.Config{Workers: 4, QueueSize: count + 16},
			notify.NewTCPTransport(0), notify.NewUDPTransport(),
			notify.NewSMTPTransport(""), sms)
		if err != nil {
			return "", err
		}
		if err := eng.SetRoute("bench", routes[name]); err != nil {
			return "", err
		}
		ev := message.E("school", "Toronto", "degree", "PhD")
		t0 := time.Now()
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < count; i++ {
				for {
					err := eng.Dispatch(notify.Notification{
						SubID: message.SubID(i), Subscriber: "bench", Event: ev,
					})
					if err == nil {
						break
					}
					time.Sleep(100 * time.Microsecond)
				}
			}
		}()
		wg.Wait()
		if !eng.Drain(30 * time.Second) {
			eng.Close()
			return "", fmt.Errorf("bench: %s queue did not drain", name)
		}
		elapsed := time.Since(t0)
		snap := eng.Metrics().Histogram("latency." + name).Snapshot()
		if err := eng.Close(); err != nil {
			return "", err
		}
		if int(snap.Count) != count {
			return "", fmt.Errorf("bench: %s delivered %d of %d", name, snap.Count, count)
		}
		t.addRow(name,
			fmt.Sprintf("%d", count),
			elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", float64(count)/elapsed.Seconds()),
			snap.P50.Round(time.Microsecond).String(),
			snap.P99.Round(time.Microsecond).String(),
		)
	}
	// Give async sinks a beat, then sanity-check reception (UDP may drop
	// under extreme load; require at least half).
	time.Sleep(50 * time.Millisecond)
	return fmt.Sprintf("T8 — notification transports\n\n%s\n(sink-side receptions observed: %d)\n",
		t, received.Load()), nil
}
