package bench

import (
	"fmt"

	"stopss/internal/matching"
	"stopss/internal/message"
	"stopss/internal/workload"
)

// T9 measures advertisement-based subscription pruning — the extension
// feature mirroring the paper's §2 web-service-discovery analogy. A
// distributed ToPSS deployment forwards a subscription to a publisher's
// broker only when it overlaps the publisher's advertisement; the table
// reports how much of the subscription base an advertisement of a given
// width prunes, and the soundness margin (pruned subscriptions never
// match a conforming publication).
func T9(sc Scale) (string, error) {
	gen, err := workload.New(workload.Config{Seed: 9, SynonymProb: 0, ConceptProb: 0})
	if err != nil {
		return "", err
	}
	nSubs := sc.size(10000)
	subs := gen.Subscriptions(nSubs)

	t := newTable("advertised attrs", "overlapping subs", "pruned", "pruned %")
	// Advertisements of increasing width over the generator's attribute
	// vocabulary: attr00..attr04, then ..attr09, then ..attr19.
	for _, width := range []int{3, 5, 10, 20} {
		var preds []message.Predicate
		for i := 0; i < width; i++ {
			preds = append(preds, message.Exists(fmt.Sprintf("attr%02d", i)))
		}
		adv := matching.NewAdvertisement("pub", preds...)
		overlapping := 0
		for _, s := range subs {
			if matching.Overlaps(adv, s) {
				overlapping++
			}
		}
		pruned := nSubs - overlapping
		t.addRow(fmt.Sprintf("%d", width),
			fmt.Sprintf("%d", overlapping),
			fmt.Sprintf("%d", pruned),
			fmt.Sprintf("%.0f%%", 100*float64(pruned)/float64(nSubs)))
	}

	// Soundness spot check: for the narrowest advertisement, no pruned
	// subscription may match a conforming event.
	var preds []message.Predicate
	for i := 0; i < 3; i++ {
		preds = append(preds, message.Exists(fmt.Sprintf("attr%02d", i)))
	}
	adv := matching.NewAdvertisement("pub", preds...)
	events := gen.Events(sc.size(2000))
	for _, ev := range events {
		var conforming message.Event
		attrs := adv.Attrs()
		for _, pair := range ev.Pairs() {
			if attrs[pair.Attr] {
				conforming.AddPair(pair)
			}
		}
		if conforming.Len() == 0 || !adv.ConformsTo(conforming) {
			continue
		}
		for _, s := range subs {
			if !matching.Overlaps(adv, s) && s.Matches(conforming) {
				return "", fmt.Errorf("bench: T9 soundness violated: pruned subscription %d matches %v", s.ID, conforming)
			}
		}
	}
	return fmt.Sprintf("T9 — advertisement-based pruning (%d subscriptions; extension)\n\n%s\nSoundness verified: no pruned subscription matched any conforming publication.\n",
		nSubs, t), nil
}
