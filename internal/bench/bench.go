// Package bench implements the experiment harness of EXPERIMENTS.md.
// Every experiment (F1, T1–T8) is a function returning a formatted
// table; cmd/stopss-bench prints them and the tests in this package run
// scaled-down versions to keep the harness itself correct.
//
// The demo paper reports no numeric tables, so the tables here reproduce
// its architecture figures and explicit performance claims; see
// DESIGN.md §5 for the mapping.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"stopss/internal/core"
	"stopss/internal/matching"
	"stopss/internal/message"
	"stopss/internal/ontology"
	"stopss/internal/semantic"
	"stopss/internal/workload"
)

// Scale shrinks the experiment sizes for tests; 1 is the full harness.
type Scale struct {
	Div int // divide every workload size by this (minimum 1)
}

func (s Scale) size(n int) int {
	d := s.Div
	if d < 1 {
		d = 1
	}
	n /= d
	if n < 10 {
		n = 10
	}
	return n
}

// table is a minimal fixed-width table writer.
type table struct {
	sb     strings.Builder
	widths []int
	rows   [][]string
}

func newTable(headers ...string) *table {
	t := &table{}
	t.addRow(headers...)
	return t
}

func (t *table) addRow(cells ...string) {
	for i, c := range cells {
		if i >= len(t.widths) {
			t.widths = append(t.widths, 0)
		}
		if len(c) > t.widths[i] {
			t.widths[i] = len(c)
		}
	}
	t.rows = append(t.rows, cells)
}

func (t *table) String() string {
	t.sb.Reset()
	for r, row := range t.rows {
		for i, c := range row {
			if i > 0 {
				t.sb.WriteString("  ")
			}
			fmt.Fprintf(&t.sb, "%-*s", t.widths[i], c)
		}
		t.sb.WriteByte('\n')
		if r == 0 {
			for i, w := range t.widths {
				if i > 0 {
					t.sb.WriteString("  ")
				}
				t.sb.WriteString(strings.Repeat("-", w))
			}
			t.sb.WriteByte('\n')
		}
	}
	return t.sb.String()
}

func nsPerOp(d time.Duration, ops int) string {
	if ops == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f µs", float64(d.Nanoseconds())/float64(ops)/1000)
}

// Experiments lists the experiment IDs in order.
func Experiments() []string {
	return []string{"F1", "T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "T9"}
}

// Run dispatches one experiment by ID.
func Run(id string, sc Scale) (string, error) {
	switch strings.ToUpper(id) {
	case "F1":
		return F1()
	case "T1":
		return T1(sc)
	case "T2":
		return T2(sc)
	case "T3":
		return T3(sc)
	case "T4":
		return T4(sc)
	case "T5":
		return T5(sc)
	case "T6":
		return T6(sc)
	case "T7":
		return T7()
	case "T8":
		return T8(sc)
	case "T9":
		return T9(sc)
	default:
		return "", fmt.Errorf("bench: unknown experiment %q (want one of %s)", id, strings.Join(Experiments(), ", "))
	}
}

// F1 reproduces Figure 1: the paper's §1 subscription/event pair walked
// through the pipeline, stage by stage.
func F1() (string, error) {
	ont, err := ontology.Load(workload.JobsODL, ontology.Options{})
	if err != nil {
		return "", err
	}
	stage := ont.Stage(semantic.FullConfig())
	eng := core.NewEngine(stage)

	sub := message.NewSubscription(1, "recruiter",
		message.Pred("university", message.OpEq, message.String("Toronto")),
		message.Pred("degree", message.OpEq, message.String("PhD")),
		message.Pred("professional experience", message.OpGe, message.Int(4)))
	if err := eng.Subscribe(sub); err != nil {
		return "", err
	}
	ev := message.E("school", "Toronto", "degree", "PhD",
		"work experience", true, "graduation year", 1990)

	var sb strings.Builder
	sb.WriteString("F1 — Figure 1 pipeline on the paper's §1 example\n\n")
	fmt.Fprintf(&sb, "S: %s\n", sub)
	fmt.Fprintf(&sb, "E: %s\n\n", ev)

	res, err := eng.Publish(ev)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&sb, "semantic stage: %d synonym rewrites, %d hierarchy pairs, %d mapping pairs, %d rounds\n",
		res.Expansion.SynonymRewrites, res.Expansion.HierarchyPairs,
		res.Expansion.MappingPairs, res.Expansion.Rounds)
	for i, dev := range res.Expansion.Events {
		kind := "root event     "
		if i > 0 {
			kind = fmt.Sprintf("derived event %d", i)
		}
		fmt.Fprintf(&sb, "  %s: %s\n", kind, dev)
	}
	fmt.Fprintf(&sb, "semantic mode matches:  %v\n", res.Matches)

	if err := eng.SetMode(core.Syntactic); err != nil {
		return "", err
	}
	res2, err := eng.Publish(ev)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&sb, "syntactic mode matches: %v\n", res2.Matches)
	if len(res.Matches) != 1 || len(res2.Matches) != 0 {
		return "", fmt.Errorf("bench: F1 invariant violated (semantic %v, syntactic %v)", res.Matches, res2.Matches)
	}
	sb.WriteString("\nPASS: semantic mode matches the pair the paper says no syntactic system can.\n")
	return sb.String(), nil
}

// stageConfigs are the cumulative pipeline configurations of T1/T2.
func stageConfigs() []struct {
	name string
	mode core.Mode
	cfg  semantic.Config
} {
	return []struct {
		name string
		mode core.Mode
		cfg  semantic.Config
	}{
		{"syntactic", core.Syntactic, semantic.SyntacticConfig()},
		{"+synonyms", core.Semantic, semantic.Config{Synonyms: true}},
		{"+syn+hierarchy", core.Semantic, semantic.Config{Synonyms: true, Hierarchy: true}},
		{"full (syn+CH+MF)", core.Semantic, semantic.FullConfig()},
	}
}

// T1 measures per-event latency of the pipeline stages over two
// matchers — the paper's claim that the semantic stage is fast and does
// not disturb the matcher.
func T1(sc Scale) (string, error) {
	gen, err := workload.New(workload.Config{Seed: 1})
	if err != nil {
		return "", err
	}
	nSubs := sc.size(20000)
	nEvents := sc.size(2000)
	subs := gen.Subscriptions(nSubs)
	events := gen.Events(nEvents)

	t := newTable("matcher", "pipeline", "ns/event", "semantic share", "matches/event")
	for _, alg := range []string{"counting", "cluster"} {
		for _, c := range stageConfigs() {
			m, err := matching.New(alg)
			if err != nil {
				return "", err
			}
			eng := core.NewEngine(gen.KB().Stage(c.cfg),
				core.WithMatcher(m), core.WithMode(c.mode))
			for _, s := range subs {
				if err := eng.Subscribe(s); err != nil {
					return "", err
				}
			}
			t0 := time.Now()
			totalMatches := 0
			for _, e := range events {
				res, err := eng.Publish(e)
				if err != nil {
					return "", err
				}
				totalMatches += len(res.Matches)
			}
			elapsed := time.Since(t0)
			st := eng.Stats()
			share := "0%"
			if tot := st.SemanticTime + st.MatchTime; tot > 0 {
				share = fmt.Sprintf("%.0f%%", 100*float64(st.SemanticTime)/float64(tot))
			}
			t.addRow(alg, c.name, nsPerOp(elapsed, nEvents), share,
				fmt.Sprintf("%.2f", float64(totalMatches)/float64(nEvents)))
		}
	}
	return fmt.Sprintf("T1 — pipeline latency, %d subscriptions, %d events\n\n%s", nSubs, nEvents, t), nil
}

// T2 counts the matches each semantic stage adds over pure syntax — the
// recall motivation of §1.
func T2(sc Scale) (string, error) {
	gen, err := workload.New(workload.Config{Seed: 2, SynonymProb: 0.6, ConceptProb: 0.4})
	if err != nil {
		return "", err
	}
	nSubs := sc.size(10000)
	nEvents := sc.size(2000)
	subs := gen.Subscriptions(nSubs)
	events := gen.Events(nEvents)

	t := newTable("pipeline", "total matches", "vs syntactic")
	var base int
	for _, c := range stageConfigs() {
		eng := core.NewEngine(gen.KB().Stage(c.cfg), core.WithMode(c.mode))
		for _, s := range subs {
			if err := eng.Subscribe(s); err != nil {
				return "", err
			}
		}
		total := 0
		for _, e := range events {
			res, err := eng.Publish(e)
			if err != nil {
				return "", err
			}
			total += len(res.Matches)
		}
		if c.name == "syntactic" {
			base = total
		}
		ratio := "1.00x"
		if base > 0 {
			ratio = fmt.Sprintf("%.2fx", float64(total)/float64(base))
		}
		t.addRow(c.name, fmt.Sprintf("%d", total), ratio)
	}
	return fmt.Sprintf("T2 — semantic recall, %d subscriptions, %d events\n\n%s", nSubs, nEvents, t), nil
}

// T3 sweeps subscription counts across the three matching algorithms —
// the substrate validation of citations [1] and [4].
func T3(sc Scale) (string, error) {
	gen, err := workload.New(workload.Config{Seed: 3})
	if err != nil {
		return "", err
	}
	sizes := []int{sc.size(1000), sc.size(10000), sc.size(50000), sc.size(100000)}
	sizes = dedupInts(sizes)
	nEvents := sc.size(500)
	events := gen.Events(nEvents)
	allSubs := gen.Subscriptions(sizes[len(sizes)-1])

	t := newTable(append([]string{"subscriptions"}, matching.Algorithms()...)...)
	for _, n := range sizes {
		row := []string{fmt.Sprintf("%d", n)}
		for _, alg := range matching.Algorithms() {
			if alg == "naive" && n > 20000 {
				row = append(row, "(skipped)")
				continue
			}
			m, err := matching.New(alg)
			if err != nil {
				return "", err
			}
			for _, s := range allSubs[:n] {
				if err := matching.Index(m, s); err != nil {
					return "", err
				}
			}
			t0 := time.Now()
			for _, e := range events {
				m.Match(e, nil)
			}
			row = append(row, nsPerOp(time.Since(t0), nEvents))
		}
		t.addRow(row...)
	}
	return fmt.Sprintf("T3 — matcher scaling (match latency per event, %d events)\n\n%s", nEvents, t), nil
}

func dedupInts(in []int) []int {
	sort.Ints(in)
	out := in[:0]
	for i, v := range in {
		if i == 0 || v != in[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// T4 checks the concept-hierarchy rules R1/R2 and sweeps the
// loss-tolerance knob (generalization level bound).
func T4(sc Scale) (string, error) {
	const depth = 6
	h := semantic.NewHierarchy()
	chain := make([]string, depth+1)
	for i := range chain {
		chain[i] = fmt.Sprintf("level%d", i) // level0 most specialized
	}
	for i := 0; i+1 < len(chain); i++ {
		if err := h.AddIsA(chain[i], chain[i+1]); err != nil {
			return "", err
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "T4 — hierarchy directionality and loss tolerance (chain depth %d)\n\n", depth)

	// One subscription per level; event at the most specialized term.
	t := newTable("max generalization", "matches (of 7 subs)", "levels matched")
	for bound := 0; bound <= depth; bound++ {
		cfg := semantic.Config{Hierarchy: true, MaxGeneralization: bound}
		eng := core.NewEngine(semantic.NewStage(nil, h, nil, cfg))
		for i, term := range chain {
			s := message.NewSubscription(message.SubID(i+1), "c",
				message.Pred("x", message.OpEq, message.String(term)))
			if err := eng.Subscribe(s); err != nil {
				return "", err
			}
		}
		res, err := eng.Publish(message.E("x", "level0"))
		if err != nil {
			return "", err
		}
		label := fmt.Sprintf("%d", bound)
		if bound == 0 {
			label = "unlimited"
		}
		var lv []string
		for _, id := range res.Matches {
			lv = append(lv, fmt.Sprintf("l%d", id-1))
		}
		t.addRow(label, fmt.Sprintf("%d", len(res.Matches)), strings.Join(lv, ","))

		// Rule R2: the general event must match only its own level.
		resR2, err := eng.Publish(message.E("x", fmt.Sprintf("level%d", depth)))
		if err != nil {
			return "", err
		}
		if len(resR2.Matches) != 1 {
			return "", fmt.Errorf("bench: rule R2 violated at bound %d: %v", bound, resR2.Matches)
		}
	}
	sb.WriteString(t.String())
	sb.WriteString("\nRule R2 verified: the fully general event matched only its own subscription at every bound.\n")
	return sb.String(), nil
}

// T5 is the hash-structure ablation: hash synonym lookup vs linear scan.
func T5(sc Scale) (string, error) {
	sizes := []int{100, 1000, 10000, 100000}
	lookups := sc.size(200000)

	t := newTable("synonym terms", "hash ns/lookup", "linear ns/lookup", "speedup")
	for _, n := range sizes {
		hashTab := semantic.NewSynonyms()
		linTab := semantic.NewLinearSynonyms()
		terms := make([]string, 0, n)
		for g := 0; g < n/4; g++ {
			root := fmt.Sprintf("root%d", g)
			syns := []string{
				fmt.Sprintf("syn%d-a", g), fmt.Sprintf("syn%d-b", g), fmt.Sprintf("syn%d-c", g),
			}
			if err := hashTab.AddGroup(root, syns...); err != nil {
				return "", err
			}
			linTab.AddGroup(root, syns...)
			terms = append(terms, root, syns[0], syns[1], syns[2])
		}
		probe := func(c interface {
			Canonical(string) (string, bool)
		}, ops int) time.Duration {
			// Stride by a prime so a reduced op count still samples the
			// whole table uniformly (a sequential probe would only hit
			// the cheap early groups of the linear scan).
			t0 := time.Now()
			for i := 0; i < ops; i++ {
				c.Canonical(terms[(i*9973)%len(terms)])
			}
			return time.Since(t0)
		}
		linOps := lookups
		if n >= 10000 {
			linOps = lookups / 100 // the scan would take minutes otherwise
		}
		hd := probe(hashTab, lookups)
		ld := probe(linTab, linOps)
		hns := float64(hd.Nanoseconds()) / float64(lookups)
		lns := float64(ld.Nanoseconds()) / float64(linOps)
		t.addRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.0f", hns), fmt.Sprintf("%.0f", lns),
			fmt.Sprintf("%.0fx", lns/hns))
	}
	return fmt.Sprintf("T5 — hash vs linear synonym resolution (%d lookups)\n\n%s", lookups, t), nil
}

// T6 sweeps mapping-chain length through the CH/MF fixpoint.
func T6(sc Scale) (string, error) {
	t := newTable("chain length", "events derived", "rounds", "ns/publication")
	reps := sc.size(5000)
	for _, hops := range []int{1, 2, 4, 8} {
		gen, err := workload.New(workload.Config{Seed: 6, MappingChains: 1, ChainLength: hops})
		if err != nil {
			return "", err
		}
		st := gen.KB().Stage(semantic.Config{Mappings: true, MaxRounds: hops + 1})
		seed := gen.ChainSeed(0)
		res := st.ProcessEvent(seed)
		t0 := time.Now()
		for i := 0; i < reps; i++ {
			st.ProcessEvent(seed)
		}
		t.addRow(fmt.Sprintf("%d", hops),
			fmt.Sprintf("%d", len(res.Events)),
			fmt.Sprintf("%d", res.Rounds),
			nsPerOp(time.Since(t0), reps))
	}
	return fmt.Sprintf("T6 — mapping-function fixpoint cost\n\n%s", t), nil
}

// T7 demonstrates multi-domain operation: a cross-domain subscription
// matches only once the inter-domain bridge mapping is installed.
func T7() (string, error) {
	jobs, err := ontology.Load(workload.JobsODL, ontology.Options{})
	if err != nil {
		return "", err
	}
	autos, err := ontology.Load(workload.AutosODL, ontology.Options{})
	if err != nil {
		return "", err
	}

	run := func(ont *ontology.Ontology, bridge bool) (int, error) {
		if bridge {
			if err := ont.Mappings.Add(semantic.FuncOf{
				FName:     "bridge.position-to-vehicle",
				FTriggers: []string{"position"},
				FApply: func(e message.Event) []message.Pair {
					// Developer positions come with a company car —
					// bridging the jobs domain into the autos domain,
					// whose hierarchy then generalizes car → vehicle.
					if v, ok := e.Get("position"); ok && v.Kind() == message.KindString {
						return []message.Pair{{Attr: "vehicle", Val: message.String("car")}}
					}
					return nil
				},
			}); err != nil {
				return 0, err
			}
		}
		eng := core.NewEngine(ont.Stage(semantic.FullConfig()))
		// An autos-domain subscription: interested in any vehicle.
		if err := eng.Subscribe(message.NewSubscription(1, "dealer",
			message.Pred("vehicle", message.OpEq, message.String("vehicle")))); err != nil {
			return 0, err
		}
		// A jobs-domain publication.
		res, err := eng.Publish(message.E("position", "web developer", "school", "Toronto"))
		if err != nil {
			return 0, err
		}
		return len(res.Matches), nil
	}

	merged1, err := ontology.Merge(jobs, autos)
	if err != nil {
		return "", err
	}
	without, err := run(merged1, false)
	if err != nil {
		return "", err
	}
	// Rebuild (Merge shares nothing with the originals' mapping sets —
	// but Add mutated merged1, so merge fresh copies).
	jobs2, _ := ontology.Load(workload.JobsODL, ontology.Options{})
	autos2, _ := ontology.Load(workload.AutosODL, ontology.Options{})
	merged2, err := ontology.Merge(jobs2, autos2)
	if err != nil {
		return "", err
	}
	with, err := run(merged2, true)
	if err != nil {
		return "", err
	}

	t := newTable("configuration", "cross-domain matches")
	t.addRow("jobs + autos, no bridge", fmt.Sprintf("%d", without))
	t.addRow("jobs + autos + bridge mapping", fmt.Sprintf("%d", with))
	if without != 0 || with != 1 {
		return "", fmt.Errorf("bench: T7 invariant violated (without=%d with=%d)", without, with)
	}
	return fmt.Sprintf("T7 — multi-domain operation (%s)\n\n%s\nPASS: one added mapping function bridges the domains (paper §3.2).\n",
		merged2.Domain, t), nil
}

// T8 measures notification delivery per transport. It is implemented in
// transports.go to keep the networking setup separate.
func T8(sc Scale) (string, error) { return runT8(sc) }
