package bench

import (
	"strings"
	"testing"
)

// The experiment harness is itself under test: every experiment must run
// (scaled down) without violating its built-in invariants.

func TestAllExperimentsRunScaled(t *testing.T) {
	sc := Scale{Div: 100}
	for _, id := range Experiments() {
		id := id
		t.Run(id, func(t *testing.T) {
			out, err := Run(id, sc)
			if err != nil {
				t.Fatalf("experiment %s: %v", id, err)
			}
			if !strings.Contains(out, id+" —") {
				t.Errorf("experiment %s output missing header:\n%s", id, out)
			}
			if len(out) < 40 {
				t.Errorf("experiment %s output suspiciously short:\n%s", id, out)
			}
		})
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("T99", Scale{}); err == nil {
		t.Error("unknown experiment must fail")
	}
}

func TestF1ContainsPaperNarrative(t *testing.T) {
	out, err := F1()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"university = Toronto",
		"(school, Toronto)",
		"semantic mode matches:  [1]",
		"syntactic mode matches: []",
		"PASS",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("F1 output missing %q:\n%s", want, out)
		}
	}
}

func TestT4VerifiesBothRules(t *testing.T) {
	out, err := T4(Scale{Div: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Rule R2 verified") {
		t.Errorf("T4 must verify rule R2:\n%s", out)
	}
	// Unlimited bound matches all 7 levels.
	if !strings.Contains(out, "unlimited") || !strings.Contains(out, "7") {
		t.Errorf("T4 table incomplete:\n%s", out)
	}
}

func TestT7BridgeInvariant(t *testing.T) {
	out, err := T7()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "PASS") {
		t.Errorf("T7 should pass its invariant:\n%s", out)
	}
}

func TestT2RecallMonotone(t *testing.T) {
	out, err := T2(Scale{Div: 50})
	if err != nil {
		t.Fatal(err)
	}
	// Extract the ratio column: each stage must be >= 1.00x.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "x") && strings.Contains(line, ".") {
			fields := strings.Fields(line)
			ratio := fields[len(fields)-1]
			if strings.HasSuffix(ratio, "x") && ratio < "1.00x" {
				t.Errorf("recall ratio below 1: %q in line %q", ratio, line)
			}
		}
	}
}

func TestTableFormatting(t *testing.T) {
	tb := newTable("a", "long-header")
	tb.addRow("xxxxx", "1")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("missing separator:\n%s", out)
	}
}
