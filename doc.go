// Package stopss is a from-scratch Go reproduction of "S-ToPSS: Semantic
// Toronto Publish/Subscribe System" (Petrovic, Burcea, Jacobsen — VLDB
// 2003).
//
// The public surface lives in the internal packages (this is a research
// reproduction laid out as a self-contained module):
//
//   - internal/message   — events, subscriptions, predicates
//   - internal/matching  — naive / counting [1] / cluster [4] matchers
//   - internal/semantic  — synonyms, concept hierarchy, mapping functions
//   - internal/ontology  — the ODL ontology language and compiler
//   - internal/core      — the S-ToPSS engine (Figure 1)
//   - internal/broker    — the pub/sub event dispatcher
//   - internal/overlay   — multi-broker federation (covering-based
//     subscription routing over TCP) and the sharded engine pool
//   - internal/notify    — TCP/UDP/SMTP/SMS notification engine (Figure 2)
//   - internal/webapp    — demonstration web application (Figure 2)
//   - internal/workload  — workload generator (paper §4)
//   - internal/bench     — the experiment harness behind EXPERIMENTS.md
//
// See README.md for a quickstart, DESIGN.md for the system inventory and
// EXPERIMENTS.md for the reproduction results. The benchmarks in
// bench_test.go regenerate the performance tables:
//
//	go test -bench=. -benchmem
package stopss
