module stopss

go 1.24
