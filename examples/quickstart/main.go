// Quickstart: the paper's §1 example in thirty lines — a subscription
// and a publication that share no syntax but must match semantically.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"stopss/internal/core"
	"stopss/internal/message"
	"stopss/internal/ontology"
	"stopss/internal/semantic"
	"stopss/internal/workload"
)

func main() {
	// 1. Load the job-finder domain ontology (synonyms, concept
	//    hierarchy and mapping functions) and build the engine.
	ont, err := ontology.Load(workload.JobsODL, ontology.Options{})
	if err != nil {
		log.Fatal(err)
	}
	engine := core.NewEngine(ont.Stage(semantic.FullConfig()))

	// 2. A recruiter subscribes — paper §1:
	//    S: (university = Toronto) ∧ (degree = PhD) ∧ (professional experience ≥ 4)
	sub := message.NewSubscription(1, "recruiter",
		message.Pred("university", message.OpEq, message.String("Toronto")),
		message.Pred("degree", message.OpEq, message.String("PhD")),
		message.Pred("professional experience", message.OpGe, message.Int(4)),
	)
	if err := engine.Subscribe(sub); err != nil {
		log.Fatal(err)
	}

	// 3. A candidate publishes a resume — paper §1:
	//    E: (school, Toronto)(degree, PhD)(work experience, true)(graduation year, 1990)
	resume := message.E(
		"school", "Toronto",
		"degree", "PhD",
		"work experience", true,
		"graduation year", 1990,
	)

	// 4. Publish in semantic mode: synonyms map school→university, the
	//    mapping function derives professional experience = 2003−1990.
	res, err := engine.Publish(resume)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("subscription: %s\n", sub)
	fmt.Printf("publication:  %s\n\n", resume)
	fmt.Printf("semantic mode:  matches = %v (derived %d events)\n",
		res.Matches, len(res.Expansion.Events))

	// 5. The same publication in syntactic mode finds nothing — this is
	//    exactly the gap the paper opens with.
	if err := engine.SetMode(core.Syntactic); err != nil {
		log.Fatal(err)
	}
	res, err = engine.Publish(resume)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("syntactic mode: matches = %v\n", res.Matches)
}
