// Damlimport: the paper's future work (§2) — "automating translation of
// ontologies expressed in DAML+OIL into a more efficient representation
// suitable for S-ToPSS". A DAML+OIL (RDF/XML) ontology is imported,
// compiled into the hash-based runtime structures and used for matching,
// interchangeably with an ODL-authored one.
//
//	go run ./examples/damlimport
package main

import (
	"fmt"
	"log"

	"stopss/internal/core"
	"stopss/internal/message"
	"stopss/internal/ontology"
	"stopss/internal/semantic"
)

// vehiclesDAML is a DAML+OIL document as the Semantic Web community of
// 2003 would have published it.
const vehiclesDAML = `<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:rdfs="http://www.w3.org/2000/01/rdf-schema#"
         xmlns:daml="http://www.daml.org/2001/03/daml+oil#">

  <daml:Class rdf:ID="vehicle"/>

  <daml:Class rdf:ID="car">
    <rdfs:subClassOf rdf:resource="#vehicle"/>
    <daml:sameClassAs rdf:resource="#automobile"/>
  </daml:Class>

  <daml:Class rdf:ID="sedan">
    <rdfs:subClassOf rdf:resource="#car"/>
  </daml:Class>

  <daml:DatatypeProperty rdf:ID="price">
    <daml:samePropertyAs rdf:resource="#cost"/>
  </daml:DatatypeProperty>
</rdf:RDF>
`

func main() {
	ont, err := ontology.ImportDAML(vehiclesDAML, "vehicles")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("imported:", ont.Summary())

	engine := core.NewEngine(ont.Stage(semantic.FullConfig()))

	// A subscriber interested in any vehicle, priced via the canonical
	// "price" attribute.
	if err := engine.Subscribe(message.NewSubscription(1, "fleet-buyer",
		message.Pred("item", message.OpEq, message.String("vehicle")),
		message.Pred("price", message.OpLe, message.Int(30000)),
	)); err != nil {
		log.Fatal(err)
	}

	// The publisher speaks DAML-derived vocabulary: a "sedan" with a
	// "cost". Both hops come from the imported ontology — sedan is-a car
	// is-a vehicle, and cost is a synonym of price.
	listing := message.E("item", "sedan", "cost", 24500)
	res, err := engine.Publish(listing)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npublication: %s\n", listing)
	fmt.Printf("matches:     %v\n\n", res.Matches)

	x, err := engine.Explain(1, listing)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(x)
}
