// Multidomain: paper §3.2 — "the use of mapping functions allows a
// single pub/sub system to be used for multiple domains simultaneously
// and … it is possible to provide inter-domain mapping by simply adding
// additional functions."
//
// Two unrelated domain ontologies (job-finder and autos) are merged into
// one engine. A car dealer's subscription cannot match a job posting —
// until a single bridge mapping function relates "company car" perks to
// the autos domain.
//
//	go run ./examples/multidomain
package main

import (
	"fmt"
	"log"

	"stopss/internal/core"
	"stopss/internal/message"
	"stopss/internal/ontology"
	"stopss/internal/semantic"
	"stopss/internal/workload"
)

func main() {
	jobs, err := ontology.Load(workload.JobsODL, ontology.Options{})
	if err != nil {
		log.Fatal(err)
	}
	autos, err := ontology.Load(workload.AutosODL, ontology.Options{})
	if err != nil {
		log.Fatal(err)
	}
	merged, err := ontology.Merge(jobs, autos)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(merged.Summary())

	// One engine serves both domains simultaneously.
	engine := core.NewEngine(merged.Stage(semantic.FullConfig()))

	// A recruiter (jobs domain) and a car dealer (autos domain).
	recruiter := message.NewSubscription(1, "recruiter",
		message.Pred("university", message.OpEq, message.String("Toronto")))
	dealer := message.NewSubscription(2, "dealer",
		message.Pred("vehicle", message.OpEq, message.String("vehicle")))
	for _, s := range []message.Subscription{recruiter, dealer} {
		if err := engine.Subscribe(s); err != nil {
			log.Fatal(err)
		}
	}

	// A job posting that mentions a company-car perk.
	posting := message.E(
		"school", "Toronto",
		"position", "web developer",
		"perk", "company car",
	)

	res, err := engine.Publish(posting)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwithout bridge: matches = %v (recruiter only — domains are isolated)\n", res.Matches)

	// Install the inter-domain bridge: perk "company car" → vehicle
	// "car". The autos concept hierarchy then generalizes car → vehicle,
	// so the dealer's subscription matches too — one added mapping
	// function connects two ontologies that know nothing of each other.
	if err := merged.Mappings.Add(semantic.FuncOf{
		FName:     "bridge.company-car",
		FTriggers: []string{"perk"},
		FApply: func(e message.Event) []message.Pair {
			for _, v := range e.GetAll("perk") {
				if v.Kind() == message.KindString && v.Str() == "company car" {
					return []message.Pair{{Attr: "vehicle", Val: message.String("car")}}
				}
			}
			return nil
		},
	}); err != nil {
		log.Fatal(err)
	}

	res, err = engine.Publish(posting)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with bridge:    matches = %v (dealer now matches a job posting)\n", res.Matches)
	fmt.Printf("\nexpansion: %d derived events, %d mapping calls, %d hierarchy pairs\n",
		len(res.Expansion.Events), res.Expansion.MappingCalls, res.Expansion.HierarchyPairs)
}
