// Lossbudget: paper §3.2 — "Some users may be satisfied with fewer
// results for their semantic subscriptions, if the matching would be
// faster. The idea is to allow the user to inform the system about how
// much information loss the user is willing to tolerate."
//
// This example sweeps the generalization-level bound over a deep degree
// taxonomy and shows the match count / latency trade-off, including the
// paper's recruiter who wants "some Java experience, but not Java
// experts".
//
//	go run ./examples/lossbudget
package main

import (
	"fmt"
	"log"
	"time"

	"stopss/internal/core"
	"stopss/internal/message"
	"stopss/internal/semantic"
)

func main() {
	// A skill taxonomy: java-guru is-a java-expert is-a java-senior
	// is-a java-developer is-a "knows java".
	h := semantic.NewHierarchy()
	chain := []string{"java-guru", "java-expert", "java-senior", "java-developer", "knows java"}
	for i := 0; i+1 < len(chain); i++ {
		if err := h.AddIsA(chain[i], chain[i+1]); err != nil {
			log.Fatal(err)
		}
	}

	// One subscription per taxonomy level.
	newEngine := func(bound int) *core.Engine {
		eng := core.NewEngine(semantic.NewStage(nil, h, nil,
			semantic.Config{Hierarchy: true, MaxGeneralization: bound}))
		for i, term := range chain {
			s := message.NewSubscription(message.SubID(i+1), fmt.Sprintf("recruiter-%d", i),
				message.Pred("skill", message.OpEq, message.String(term)))
			if err := eng.Subscribe(s); err != nil {
				log.Fatal(err)
			}
		}
		return eng
	}

	// A guru's resume, published under decreasing loss budgets.
	resume := message.E("skill", "java-guru", "name", "Ada")
	fmt.Println("resume:", resume)
	fmt.Println()
	fmt.Printf("%-18s  %-9s  %s\n", "generality bound", "matches", "latency")
	for _, bound := range []int{0, 4, 3, 2, 1} {
		eng := newEngine(bound)
		t0 := time.Now()
		var res core.MatchResult
		var err error
		for i := 0; i < 1000; i++ {
			res, err = eng.Publish(resume)
			if err != nil {
				log.Fatal(err)
			}
		}
		lat := time.Since(t0) / 1000
		label := fmt.Sprintf("%d levels", bound)
		if bound == 0 {
			label = "unlimited"
		}
		fmt.Printf("%-18s  %-9d  %v\n", label, len(res.Matches), lat)
	}

	// The entry-level recruiter of §3.2: wants developers, not experts.
	// With the level bound at 1, a guru's resume only reaches
	// java-expert — the java-developer subscription stays quiet.
	fmt.Println()
	eng := newEngine(1)
	res, err := eng.Publish(resume)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("entry-level scenario (bound 1): guru resume matches %d subscriptions —\n", len(res.Matches))
	fmt.Println("the java-developer recruiter is spared the over-qualified candidate.")
}
