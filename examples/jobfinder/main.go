// Jobfinder: the full demonstration scenario of paper §4 in one process —
// 30 companies subscribe with qualification requirements, 200 candidates
// publish resumes, and matches are delivered through the notification
// engine over a real TCP socket.
//
//	go run ./examples/jobfinder
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"stopss/internal/broker"
	"stopss/internal/core"
	"stopss/internal/notify"
	"stopss/internal/ontology"
	"stopss/internal/semantic"
	"stopss/internal/workload"
)

func main() {
	ont, err := ontology.Load(workload.JobsODL, ontology.Options{})
	if err != nil {
		log.Fatal(err)
	}
	engine := core.NewEngine(ont.Stage(semantic.FullConfig()))

	// A TCP sink plays the role of the companies' inboxes.
	var received atomic.Int64
	sink, err := notify.NewTCPSink("127.0.0.1:0", func(n notify.Notification) {
		received.Add(1)
		if received.Load() <= 3 {
			fmt.Printf("  notification → %s: %s\n", n.Subscriber, n.Event)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sink.Close()

	notifier, err := notify.NewEngine(notify.Config{Workers: 4}, notify.NewTCPTransport(0))
	if err != nil {
		log.Fatal(err)
	}
	defer notifier.Close()

	b := broker.New(engine, notifier)

	// Companies subscribe.
	jf := workload.NewJobFinder(2003)
	subs := jf.Recruiters(30)
	for _, s := range subs {
		if err := b.Register(broker.Client{
			Name:  s.Subscriber,
			Route: notify.Route{Transport: "tcp", Addr: sink.Addr()},
		}); err != nil {
			log.Fatal(err)
		}
		if _, err := b.Subscribe(s.Subscriber, s.Preds); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("%d companies subscribed, e.g. %s\n\n", len(subs), subs[0])

	// Candidates publish resumes.
	resumes := jf.Resumes(200)
	matches := 0
	for _, r := range resumes {
		res, err := b.Publish(r)
		if err != nil {
			log.Fatal(err)
		}
		matches += len(res.Matches)
	}
	notifier.Drain(5 * time.Second)
	time.Sleep(50 * time.Millisecond) // let the sink catch the tail

	st := b.Stats()
	fmt.Printf("\npublished %d resumes: %d matches (%.2f per resume)\n",
		len(resumes), matches, float64(matches)/float64(len(resumes)))
	fmt.Printf("delivered %d notifications over TCP\n", received.Load())
	fmt.Printf("semantic stage: %d synonym rewrites, %d mapping calls, %d derived events\n",
		st.Engine.SynonymRewrites, st.Engine.MappingCalls, st.Engine.DerivedEvents)

	// The punchline of the demo (§4): switch to syntactic mode and watch
	// the matches disappear — resumes say "school", subscriptions say
	// "university".
	if err := engine.SetMode(core.Syntactic); err != nil {
		log.Fatal(err)
	}
	synMatches := 0
	for _, r := range resumes {
		res, err := b.Publish(r)
		if err != nil {
			log.Fatal(err)
		}
		synMatches += len(res.Matches)
	}
	fmt.Printf("\nsyntactic mode on the same resumes: %d matches\n", synMatches)
}
